"""JSON serialization of task graphs and compiled-design summaries.

Functional bodies (arbitrary Python callables) are not serializable and
are dropped with a marker; everything the compiler consumes — hints, work
models, ports, channels — round-trips exactly.  Compiled designs export a
summary document (assignment, placement, bindings, frequency) suitable
for dashboards or regression diffing.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import GraphError
from ..hls.resource import ResourceVector
from .channel import Channel
from .graph import TaskGraph
from .task import MMAPPort, PortDirection, Task, TaskWork

FORMAT_VERSION = 1


def _task_to_dict(task: Task) -> dict[str, Any]:
    out: dict[str, Any] = {"name": task.name, "kind": task.kind}
    if task.hints:
        out["hints"] = task.hints
    if task.work is not None:
        out["work"] = {
            "compute_cycles": task.work.compute_cycles,
            "hbm_bytes_read": task.work.hbm_bytes_read,
            "hbm_bytes_written": task.work.hbm_bytes_written,
            "startup_cycles": task.work.startup_cycles,
            "ops": task.work.ops,
        }
    if task.hbm_ports:
        out["hbm_ports"] = [
            {
                "name": p.name,
                "direction": p.direction.value,
                "width_bits": p.width_bits,
                "volume_bytes": p.volume_bytes,
                "preferred_channel": p.preferred_channel,
            }
            for p in task.hbm_ports
        ]
    if task.resources is not None:
        out["resources"] = task.resources.as_dict()
    if task.func is not None:
        out["has_func"] = True
    return out


def _task_from_dict(data: dict[str, Any]) -> Task:
    work = None
    if "work" in data:
        work = TaskWork(**data["work"])
    ports = [
        MMAPPort(
            name=p["name"],
            direction=PortDirection(p["direction"]),
            width_bits=p["width_bits"],
            volume_bytes=p.get("volume_bytes", 0.0),
            preferred_channel=p.get("preferred_channel"),
        )
        for p in data.get("hbm_ports", [])
    ]
    task = Task(
        name=data["name"],
        kind=data.get("kind", "compute"),
        hints=dict(data.get("hints", {})),
        work=work,
        hbm_ports=ports,
    )
    if "resources" in data:
        task.resources = ResourceVector.from_dict(data["resources"])
    return task


def graph_to_dict(graph: TaskGraph) -> dict[str, Any]:
    """A JSON-ready document for one task graph."""
    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "tasks": [_task_to_dict(t) for t in graph.tasks()],
        "channels": [
            {
                "name": c.name,
                "src": c.src,
                "dst": c.dst,
                "width_bits": c.width_bits,
                "depth": c.depth,
                "tokens": c.tokens,
                **({"alias": c.alias} if c.alias else {}),
            }
            for c in graph.channels()
        ],
    }


def graph_from_dict(data: dict[str, Any]) -> TaskGraph:
    """Rebuild a task graph from :func:`graph_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise GraphError(
            f"unsupported graph format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    graph = TaskGraph(name=data.get("name", "design"))
    for task_data in data.get("tasks", []):
        graph.add_task(_task_from_dict(task_data))
    for chan in data.get("channels", []):
        graph.add_channel(
            Channel(
                name=chan["name"],
                src=chan["src"],
                dst=chan["dst"],
                width_bits=chan.get("width_bits", 32),
                depth=chan.get("depth", 2),
                tokens=chan.get("tokens", 0.0),
                alias=chan.get("alias"),
            )
        )
    return graph


def dumps(graph: TaskGraph, indent: int | None = 2) -> str:
    """Serialize a task graph to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def loads(text: str) -> TaskGraph:
    """Deserialize a task graph from a JSON string."""
    return graph_from_dict(json.loads(text))


def design_summary(design) -> dict[str, Any]:
    """A JSON-ready summary of a compiled design (not round-trippable)."""
    return {
        "format_version": FORMAT_VERSION,
        "name": design.name,
        "flow": design.flow,
        "num_devices": design.cluster.num_devices,
        "devices_used": design.num_devices_used,
        "frequency_mhz": design.frequency_mhz,
        "per_device_frequency_mhz": {
            str(k): v for k, v in design.per_device_frequency_mhz.items()
        },
        "assignment": dict(design.comm.assignment),
        "placement": {
            str(device): {
                task: [slot.row, slot.col]
                for task, slot in plan.placement.items()
            }
            for device, plan in design.intra.items()
        },
        "hbm_binding": {
            str(device): {
                f"{task}.{port}": channel
                for (task, port), channel in binding.binding.items()
            }
            for device, binding in design.hbm_bindings.items()
        },
        "inter_fpga_volume_bytes": design.inter_fpga_volume_bytes,
        "pipeline_registers": design.total_pipeline_registers(),
        "floorplan_tier": getattr(design, "floorplan_tier", "full"),
        "floorplan_seconds": {
            "l1": design.inter_floorplan_seconds,
            "l2": design.intra_floorplan_seconds,
        },
    }
