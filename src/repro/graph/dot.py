"""Graphviz DOT export of task graphs and floorplans.

Mirrors the paper's topology figures: compute tasks are ellipses, tasks
with HBM ports get a hexagon-styled annotation, and (when an assignment is
given) each device becomes a cluster box, so the rendered figure looks
like Figure 4(B)'s dashed partition.
"""

from __future__ import annotations

from collections import defaultdict

from .graph import TaskGraph


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def to_dot(
    graph: TaskGraph,
    assignment: dict[str, int] | None = None,
    show_widths: bool = True,
) -> str:
    """Render the task graph as DOT source.

    Args:
        graph: the design to render.
        assignment: optional task -> device mapping; devices render as
            subgraph clusters.
        show_widths: label edges with their FIFO bit widths.
    """
    lines = [f'digraph "{_escape(graph.name)}" {{', "  rankdir=LR;"]

    def node_line(name: str) -> str:
        task = graph.task(name)
        shape = "hexagon" if task.uses_hbm else "ellipse"
        return f'  "{_escape(name)}" [shape={shape}];'

    if assignment is None:
        for task in graph.tasks():
            lines.append(node_line(task.name))
    else:
        by_device: dict[int, list[str]] = defaultdict(list)
        for name, device in assignment.items():
            by_device[device].append(name)
        for device in sorted(by_device):
            lines.append(f"  subgraph cluster_fpga{device} {{")
            lines.append(f'    label="FPGA {device}"; style=dashed;')
            for name in sorted(by_device[device]):
                lines.append("  " + node_line(name))
            lines.append("  }")
        for task in graph.tasks():
            if task.name not in assignment:
                lines.append(node_line(task.name))

    for chan in graph.channels():
        attrs = []
        if show_widths:
            attrs.append(f'label="{chan.width_bits}b"')
        if assignment is not None and assignment.get(chan.src) != assignment.get(chan.dst):
            attrs.append("color=red penwidth=2")
        attr_str = f" [{' '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{_escape(chan.src)}" -> "{_escape(chan.dst)}"{attr_str};')

    lines.append("}")
    return "\n".join(lines)
