"""The task graph G(V, E) of Section 4.1.

Vertices are tasks (compute modules), edges are FIFO channels.  The graph
is a multigraph — two tasks may be connected by several FIFOs — and may
contain cycles (the PageRank benchmark has dependency cycles between its
PEs and controller, Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..errors import GraphError
from ..hls.resource import ResourceVector, total_resources
from .channel import Channel
from .task import Task


@dataclass
class TaskGraph:
    """A dataflow design: named tasks connected by named FIFO channels."""

    name: str = "design"
    _tasks: dict[str, Task] = field(default_factory=dict)
    _channels: dict[str, Channel] = field(default_factory=dict)

    # -- construction ----------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        """Insert a task; names must be unique."""
        if task.name in self._tasks:
            raise GraphError(f"duplicate task {task.name!r}")
        self._tasks[task.name] = task
        return task

    def add_channel(self, channel: Channel) -> Channel:
        """Insert a channel; both endpoints must already exist."""
        if channel.name in self._channels:
            raise GraphError(f"duplicate channel {channel.name!r}")
        for endpoint in channel.endpoints():
            if endpoint not in self._tasks:
                raise GraphError(
                    f"channel {channel.name!r} references unknown task {endpoint!r}"
                )
        self._channels[channel.name] = channel
        return channel

    def remove_channel(self, name: str) -> Channel:
        """Remove and return a channel (used by communication insertion)."""
        try:
            return self._channels.pop(name)
        except KeyError:
            raise GraphError(f"no channel named {name!r}") from None

    # -- queries ---------------------------------------------------------------

    @property
    def num_tasks(self) -> int:
        return len(self._tasks)

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    def tasks(self) -> Iterator[Task]:
        yield from self._tasks.values()

    def channels(self) -> Iterator[Channel]:
        yield from self._channels.values()

    def task_names(self) -> list[str]:
        return list(self._tasks)

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise GraphError(f"no task named {name!r}") from None

    def channel(self, name: str) -> Channel:
        try:
            return self._channels[name]
        except KeyError:
            raise GraphError(f"no channel named {name!r}") from None

    def has_task(self, name: str) -> bool:
        return name in self._tasks

    def out_channels(self, task_name: str) -> list[Channel]:
        """Channels whose producer is ``task_name``."""
        self.task(task_name)
        return [c for c in self._channels.values() if c.src == task_name]

    def in_channels(self, task_name: str) -> list[Channel]:
        """Channels whose consumer is ``task_name``."""
        self.task(task_name)
        return [c for c in self._channels.values() if c.dst == task_name]

    def neighbors(self, task_name: str) -> set[str]:
        """Tasks sharing at least one channel with ``task_name``."""
        out = {c.dst for c in self.out_channels(task_name)}
        inn = {c.src for c in self.in_channels(task_name)}
        return out | inn

    def sources(self) -> list[Task]:
        """Tasks with no incoming channels (design entry points)."""
        have_in = {c.dst for c in self._channels.values()}
        return [t for t in self._tasks.values() if t.name not in have_in]

    def sinks(self) -> list[Task]:
        """Tasks with no outgoing channels (design exit points)."""
        have_out = {c.src for c in self._channels.values()}
        return [t for t in self._tasks.values() if t.name not in have_out]

    def hbm_tasks(self) -> list[Task]:
        """Tasks that access external memory (hexagon-adjacent in Fig. 9)."""
        return [t for t in self._tasks.values() if t.uses_hbm]

    # -- aggregates --------------------------------------------------------------

    def total_resources(self) -> ResourceVector:
        """Sum of all synthesized task resource profiles.

        Raises:
            GraphError: if any task lacks a resource profile.
        """
        return total_resources([t.require_resources() for t in self._tasks.values()])

    def total_hbm_volume_bytes(self) -> float:
        return sum(t.hbm_volume_bytes for t in self._tasks.values())

    def cut_volume_bytes(self, assignment: dict[str, int]) -> float:
        """Total FIFO traffic (bytes) crossing a device assignment.

        This is the "inter-FPGA data transfer volume" the paper reports in
        Tables 4 and 7.
        """
        volume = 0.0
        for chan in self._channels.values():
            if assignment[chan.src] != assignment[chan.dst]:
                volume += chan.volume_bytes
        return volume

    def cut_width_bits(self, assignment: dict[str, int]) -> int:
        """Total bit width of channels crossing a device assignment."""
        return sum(
            c.width_bits
            for c in self._channels.values()
            if assignment[c.src] != assignment[c.dst]
        )

    def cut_channels(self, assignment: dict[str, int]) -> list[Channel]:
        """Channels whose endpoints sit on different devices."""
        return [
            c
            for c in self._channels.values()
            if assignment[c.src] != assignment[c.dst]
        ]

    # -- validation ----------------------------------------------------------------

    def validate(self) -> None:
        """Structural sanity checks; collects every violation, then raises.

        A valid design has at least one task, no dangling channels, no
        self loops, and no task is completely disconnected unless it is
        the only task.  All violations are gathered through the
        design-rule diagnostics framework and raised together as one
        :class:`GraphError` whose message carries the rule ids, so a
        broken builder surfaces every problem in a single round trip.
        """
        from ..check.graph_rules import structural_diagnostics

        report = structural_diagnostics(self)
        errors = report.errors
        if errors:
            raise GraphError(
                f"graph {self.name!r} failed validation with "
                f"{len(errors)} error(s):\n"
                + "\n".join(f"  {d.render()}" for d in errors)
            )

    def copy(self) -> "TaskGraph":
        """A structural copy sharing Task/Channel objects' immutable parts.

        Tasks and channels are shallow-copied dataclass instances, so later
        pipeline stages can annotate the copy without mutating the input.
        """
        import copy as _copy

        clone = TaskGraph(name=self.name)
        for task in self._tasks.values():
            clone.add_task(_copy.copy(task))
        for chan in self._channels.values():
            clone.add_channel(_copy.copy(chan))
        return clone

    def subgraph(self, task_names: Iterable[str], name: str | None = None) -> "TaskGraph":
        """The induced subgraph over ``task_names`` (channels fully inside)."""
        keep = set(task_names)
        missing = keep - set(self._tasks)
        if missing:
            raise GraphError(f"unknown tasks in subgraph request: {sorted(missing)}")
        sub = TaskGraph(name=name or f"{self.name}_sub")
        for tname in keep:
            sub.add_task(self._tasks[tname])
        for chan in self._channels.values():
            if chan.src in keep and chan.dst in keep:
                sub.add_channel(chan)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskGraph({self.name!r}, tasks={self.num_tasks}, "
            f"channels={self.num_channels})"
        )
