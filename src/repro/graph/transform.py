"""Graph transformations: coarsening for very large designs.

Floorplanning a 493-module systolic array directly is what makes the
paper's L1 step cost tens of seconds; production floorplanners coarsen
first — tightly-coupled module groups collapse into super-nodes, the ILP
partitions the small coarse graph, and the assignment projects back to
the original modules.  This module implements that pre-pass:

* :func:`coarsen` merges tasks greedily by heaviest connecting edge
  (Karypis/Kumar-style matching) until a target node count is reached,
  respecting a resource ceiling per group so no super-node outgrows a
  floorplan slot;
* :func:`project_assignment` maps a coarse assignment back to the
  original task names.

Coarsening preserves cut structure: an edge inside a group can never be
cut, and the coarse graph's inter-group edges carry the summed widths and
tokens of their member FIFOs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GraphError
from ..hls.resource import ResourceVector, total_resources
from .channel import Channel
from .graph import TaskGraph
from .task import Task


@dataclass(frozen=True, slots=True)
class CoarseningResult:
    """A coarse graph plus the grouping that produced it."""

    graph: TaskGraph
    groups: dict[str, tuple[str, ...]]  # super-node -> member tasks

    def group_of(self, task_name: str) -> str:
        for group, members in self.groups.items():
            if task_name in members:
                return group
        raise GraphError(f"task {task_name!r} not in any group")


def coarsen(
    graph: TaskGraph,
    target_nodes: int,
    max_group_resources: ResourceVector | None = None,
) -> CoarseningResult:
    """Collapse the graph to at most ``target_nodes`` super-nodes.

    Tasks must be synthesized (groups respect a resource ceiling).  Merging
    is greedy by total connecting FIFO width — the pairs that would be the
    most expensive to cut collapse first.

    Args:
        graph: the synthesized design.
        target_nodes: stop once this many groups remain (>= 2).
        max_group_resources: per-group ceiling; defaults to ~2x the
            fair share (total / target), keeping groups balanced.

    Raises:
        GraphError: for an unsynthesized graph or a nonsensical target.
    """
    if target_nodes < 2:
        raise GraphError("coarsening target must be at least 2 nodes")
    for task in graph.tasks():
        task.require_resources()
    if max_group_resources is None:
        # Balanced default: no group may exceed ~2x its fair share,
        # which prevents the heaviest-edge matching from snowballing one
        # giant super-node that no floorplan slot could host.
        total = total_resources([t.require_resources() for t in graph.tasks()])
        max_group_resources = total * (2.0 / target_nodes)

    # Union-find over task names.
    parent: dict[str, str] = {t.name: t.name for t in graph.tasks()}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    group_area: dict[str, ResourceVector] = {
        t.name: t.require_resources() for t in graph.tasks()
    }
    num_groups = graph.num_tasks

    def can_merge(a: str, b: str) -> bool:
        if max_group_resources is None:
            return True
        merged = group_area[a] + group_area[b]
        return merged.fits_within(max_group_resources, threshold=1.0)

    # Pair weights: total width of FIFOs between two current groups.
    while num_groups > target_nodes:
        weights: dict[tuple[str, str], float] = {}
        for chan in graph.channels():
            a, b = find(chan.src), find(chan.dst)
            if a == b:
                continue
            key = (a, b) if a < b else (b, a)
            weights[key] = weights.get(key, 0.0) + chan.width_bits
        candidates = sorted(weights.items(), key=lambda kv: -kv[1])
        merged_any = False
        for (a, b), _weight in candidates:
            a, b = find(a), find(b)
            if a == b or not can_merge(a, b):
                continue
            parent[b] = a
            group_area[a] = group_area[a] + group_area[b]
            num_groups -= 1
            merged_any = True
            break
        if not merged_any:
            break  # every remaining merge violates the ceiling

    # Build the coarse graph.
    members: dict[str, list[str]] = {}
    for task in graph.tasks():
        members.setdefault(find(task.name), []).append(task.name)
    coarse = TaskGraph(name=f"{graph.name}_coarse")
    group_names: dict[str, str] = {}
    for index, (root, names) in enumerate(sorted(members.items())):
        gname = f"g{index}"
        group_names[root] = gname
        area = total_resources([graph.task(n).require_resources() for n in names])
        # Port names must stay unique inside the merged super-node.
        renamed = [
            type(p)(
                name=f"{n}_{p.name}",
                direction=p.direction,
                width_bits=p.width_bits,
                volume_bytes=p.volume_bytes,
                preferred_channel=p.preferred_channel,
            )
            for n in names
            for p in graph.task(n).hbm_ports
        ]
        super_node = Task(name=gname, kind="group", hbm_ports=renamed)
        super_node.resources = area
        coarse.add_task(super_node)

    edge_widths: dict[tuple[str, str], float] = {}
    edge_tokens: dict[tuple[str, str], float] = {}
    for chan in graph.channels():
        a = group_names[find(chan.src)]
        b = group_names[find(chan.dst)]
        if a == b:
            continue
        key = (a, b)
        edge_widths[key] = edge_widths.get(key, 0.0) + chan.width_bits
        edge_tokens[key] = max(edge_tokens.get(key, 0.0), chan.tokens)
    for index, ((a, b), width) in enumerate(sorted(edge_widths.items())):
        coarse.add_channel(
            Channel(
                name=f"ce{index}",
                src=a,
                dst=b,
                width_bits=max(1, int(width)),
                tokens=edge_tokens[(a, b)],
            )
        )

    groups = {
        group_names[root]: tuple(sorted(names))
        for root, names in members.items()
    }
    return CoarseningResult(graph=coarse, groups=groups)


def project_assignment(
    result: CoarseningResult, coarse_assignment: dict[str, int]
) -> dict[str, int]:
    """Expand a coarse-node assignment back to original task names."""
    out: dict[str, int] = {}
    for group, device in coarse_assignment.items():
        for member in result.groups[group]:
            out[member] = device
    return out
