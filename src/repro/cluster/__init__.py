"""Cluster models: topologies, link media, and device clusters."""

from .cluster import Cluster, make_cluster, paper_testbed
from .links import (
    ETHERNET_100G,
    INTER_NODE_10G,
    PCIE_GEN3X16,
    LinkKind,
    LinkMedium,
    get_medium,
)
from .topology import (
    BusTopology,
    ChainTopology,
    HypercubeTopology,
    MeshTopology,
    RingTopology,
    StarTopology,
    Topology,
    make_topology,
)

__all__ = [
    "ETHERNET_100G",
    "INTER_NODE_10G",
    "PCIE_GEN3X16",
    "BusTopology",
    "ChainTopology",
    "Cluster",
    "HypercubeTopology",
    "LinkKind",
    "LinkMedium",
    "MeshTopology",
    "RingTopology",
    "StarTopology",
    "Topology",
    "get_medium",
    "make_cluster",
    "make_topology",
    "paper_testbed",
]
