"""Interconnect media between FPGAs.

The paper's ILP cost function (Eq. 2) scales communication cost by a factor
lambda that normalizes different transfer media against the 100 Gbps
Ethernet baseline: PCIe Gen3x16 costs 12.5x more than Ethernet, and the
Section 5.7 inter-node hop (10 Gbps host Ethernet + two host<->device
copies) costs about 10x more again.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..network.retransmission import expected_transmissions


class LinkKind(Enum):
    """The physical medium of an inter-FPGA connection."""

    ETHERNET_100G = "ethernet-100g"
    PCIE_GEN3X16 = "pcie-gen3x16"
    INTER_NODE_10G = "inter-node-10g"


@dataclass(frozen=True, slots=True)
class LinkMedium:
    """Bandwidth/latency characteristics of one link medium.

    ``cost_scale`` is the lambda of Eq. 2, normalized so that the 100 Gbps
    Ethernet baseline has scale 1.0.
    """

    kind: LinkKind
    bandwidth_gbps: float
    round_trip_latency_us: float
    cost_scale: float

    @property
    def one_way_latency_s(self) -> float:
        return self.round_trip_latency_us / 2.0 * 1e-6

    def transfer_seconds(
        self,
        volume_bytes: float,
        *,
        loss_rate: float = 0.0,
        bandwidth_factor: float = 1.0,
        window_packets: int = 64,
    ) -> float:
        """Ideal time to move ``volume_bytes`` over this link, one message.

        Under an injected ``loss_rate`` the wire term inflates by the
        go-back-N expected-transmissions factor; ``bandwidth_factor``
        scales the sustained rate (a renegotiated lane).  Defaults leave
        the healthy formula untouched bit-for-bit.
        """
        if volume_bytes <= 0:
            return 0.0
        wire = volume_bytes * 8.0 / (self.bandwidth_gbps * 1e9)
        if loss_rate > 0.0 or bandwidth_factor != 1.0:
            wire *= expected_transmissions(loss_rate, window_packets)
            wire /= bandwidth_factor
        return self.one_way_latency_s + wire


#: AlveoLink over QSFP28: 100 Gbps line rate, 1 us round trip (Section 4.4).
ETHERNET_100G = LinkMedium(
    kind=LinkKind.ETHERNET_100G,
    bandwidth_gbps=100.0,
    round_trip_latency_us=1.0,
    cost_scale=1.0,
)

#: PCIe Gen3x16 P2P DMA: the paper scales its ILP cost 12.5x over Ethernet
#: and quotes a 1250 ns round trip (Section 6.2, SMAPPIC comparison).
PCIE_GEN3X16 = LinkMedium(
    kind=LinkKind.PCIE_GEN3X16,
    bandwidth_gbps=100.0 / 12.5,
    round_trip_latency_us=1.25,
    cost_scale=12.5,
)

#: Host-side MPI over 10 Gbps Ethernet between server nodes (Section 5.7);
#: ~10x slower than the intra-node FPGA links.
INTER_NODE_10G = LinkMedium(
    kind=LinkKind.INTER_NODE_10G,
    bandwidth_gbps=10.0,
    round_trip_latency_us=50.0,
    cost_scale=10.0,
)

_MEDIA = {m.kind: m for m in (ETHERNET_100G, PCIE_GEN3X16, INTER_NODE_10G)}


def get_medium(kind: LinkKind) -> LinkMedium:
    """Look up the catalog entry for a link kind."""
    return _MEDIA[kind]
