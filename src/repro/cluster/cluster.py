"""The FPGA cluster: devices + topology + link media.

A :class:`Cluster` is the target the compiler maps a design onto.  The
paper's testbed is two server nodes, each holding a 4-FPGA ring of Alveo
U55C cards on 100 Gbps QSFP28 links, with a 10 Gbps host-side link between
nodes (Sections 5 and 5.7).  :func:`paper_testbed` builds exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.fpga import FPGAInstance, FPGAPart
from ..devices.parts import ALVEO_U55C
from ..errors import TopologyError
from .links import ETHERNET_100G, INTER_NODE_10G, LinkMedium
from .topology import RingTopology, Topology


@dataclass(slots=True)
class Cluster:
    """A set of network-connected FPGAs the compiler can target.

    Attributes:
        devices: the FPGA instances, indexed by ``device_num``.
        topology: connection pattern over the devices.
        intra_node_link: medium for same-node FPGA-to-FPGA hops.
        inter_node_link: medium for hops that cross server nodes.
    """

    devices: list[FPGAInstance]
    topology: Topology
    intra_node_link: LinkMedium = ETHERNET_100G
    inter_node_link: LinkMedium = INTER_NODE_10G

    def __post_init__(self) -> None:
        if len(self.devices) != self.topology.num_devices:
            raise TopologyError(
                f"{len(self.devices)} devices but topology expects "
                f"{self.topology.num_devices}"
            )
        nums = [d.device_num for d in self.devices]
        if nums != list(range(len(self.devices))):
            raise TopologyError(
                "devices must be numbered contiguously from 0 in list order"
            )

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_nodes(self) -> int:
        return len({d.node for d in self.devices})

    def device(self, device_num: int) -> FPGAInstance:
        return self.devices[device_num]

    def link_between(self, i: int, j: int) -> LinkMedium:
        """The medium used between devices ``i`` and ``j``.

        Crossing server nodes uses the slow inter-node path regardless of
        the device-level topology (Section 5.7).
        """
        if self.devices[i].node != self.devices[j].node:
            return self.inter_node_link
        return self.intra_node_link

    def comm_cost(self, i: int, j: int) -> float:
        """The ILP distance term: ``dist(Fi, Fj) * lambda`` of Eq. 2."""
        if i == j:
            return 0.0
        return self.topology.dist(i, j) * self.link_between(i, j).cost_scale

    def same_node(self, i: int, j: int) -> bool:
        return self.devices[i].node == self.devices[j].node


def make_cluster(
    num_fpgas: int,
    part: FPGAPart = ALVEO_U55C,
    topology: Topology | None = None,
    fpgas_per_node: int | None = None,
    intra_node_link: LinkMedium = ETHERNET_100G,
    inter_node_link: LinkMedium = INTER_NODE_10G,
) -> Cluster:
    """Convenience constructor for a homogeneous cluster.

    Args:
        num_fpgas: total device count.
        part: device part for every card (default Alveo U55C).
        topology: defaults to a bidirectional ring, matching the testbed.
        fpgas_per_node: devices per server node; default puts everything on
            one node.
    """
    if topology is None:
        topology = RingTopology(num_fpgas)
    per_node = fpgas_per_node or num_fpgas
    devices = [
        FPGAInstance(device_num=i, part=part, node=i // per_node)
        for i in range(num_fpgas)
    ]
    return Cluster(
        devices=devices,
        topology=topology,
        intra_node_link=intra_node_link,
        inter_node_link=inter_node_link,
    )


def paper_testbed(num_fpgas: int = 4) -> Cluster:
    """The paper's evaluation cluster: U55C cards in 4-FPGA rings per node.

    ``num_fpgas`` up to 8 (two nodes).  For 8 FPGAs the topology is a ring
    over all devices but hops between the two nodes pay the 10 Gbps
    host-MPI path, reproducing Section 5.7.
    """
    if not 1 <= num_fpgas <= 8:
        raise TopologyError("paper testbed supports 1-8 FPGAs")
    return make_cluster(num_fpgas, part=ALVEO_U55C, fpgas_per_node=4)
