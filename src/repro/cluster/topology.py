"""Cluster topologies and their distance metrics.

Section 4.3 defines the inter-FPGA communication cost as
``width * dist(Fi, Fj) * lambda`` where ``dist`` depends on the topology:
Eq. 3 for a daisy chain and its ring variant for a bidirectional ring.
Figure 6 additionally names bus, star, mesh, and hypercube topologies; we
implement each as hop counts on the corresponding graph, which reduces to
the paper's formulas for chain and ring.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import TopologyError


@dataclass(frozen=True)
class Topology(ABC):
    """A connection pattern over ``num_devices`` FPGAs.

    Distances are symmetric hop counts; ``dist(i, i) == 0``.  Devices are
    numbered 0 .. num_devices-1 (``device_num`` in the paper's notation).
    """

    num_devices: int

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise TopologyError("topology needs at least one device")
        self._validate()

    def _validate(self) -> None:
        """Subclass hook for extra structural requirements."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short human-readable topology name."""

    @abstractmethod
    def dist(self, i: int, j: int) -> int:
        """Hop count between device ``i`` and device ``j``."""

    def _check(self, i: int, j: int) -> None:
        for dev in (i, j):
            if not 0 <= dev < self.num_devices:
                raise TopologyError(
                    f"device {dev} outside cluster of {self.num_devices}"
                )

    def neighbors(self, i: int) -> list[int]:
        """Devices exactly one hop away from ``i``."""
        return [j for j in range(self.num_devices) if j != i and self.dist(i, j) == 1]

    def diameter(self) -> int:
        """Largest pairwise distance in the cluster."""
        return max(
            (
                self.dist(i, j)
                for i in range(self.num_devices)
                for j in range(self.num_devices)
            ),
            default=0,
        )


class ChainTopology(Topology):
    """Daisy chain: dist = |i - j| (paper Eq. 3)."""

    @property
    def name(self) -> str:
        return "chain"

    def dist(self, i: int, j: int) -> int:
        self._check(i, j)
        return abs(i - j)


class RingTopology(Topology):
    """Bidirectional ring: dist = min(|i-j|, N - |i-j|) (Section 4.3)."""

    @property
    def name(self) -> str:
        return "ring"

    def dist(self, i: int, j: int) -> int:
        self._check(i, j)
        direct = abs(i - j)
        return min(direct, self.num_devices - direct)


class BusTopology(Topology):
    """Shared bus: every distinct pair is one hop apart, but the medium is
    shared (contention is modeled by the simulator, not the distance)."""

    @property
    def name(self) -> str:
        return "bus"

    def dist(self, i: int, j: int) -> int:
        self._check(i, j)
        return 0 if i == j else 1


class StarTopology(Topology):
    """Star with device 0 at the hub: hub <-> leaf is 1 hop, leaf <-> leaf 2."""

    @property
    def name(self) -> str:
        return "star"

    def dist(self, i: int, j: int) -> int:
        self._check(i, j)
        if i == j:
            return 0
        if i == 0 or j == 0:
            return 1
        return 2


class MeshTopology(Topology):
    """2-D mesh of ``rows x cols`` devices, row-major numbering."""

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise TopologyError("mesh dimensions must be positive")
        self._rows = rows
        self._cols = cols
        super().__init__(num_devices=rows * cols)

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def cols(self) -> int:
        return self._cols

    @property
    def name(self) -> str:
        return f"mesh{self._rows}x{self._cols}"

    def dist(self, i: int, j: int) -> int:
        self._check(i, j)
        ri, ci = divmod(i, self._cols)
        rj, cj = divmod(j, self._cols)
        return abs(ri - rj) + abs(ci - cj)


class HypercubeTopology(Topology):
    """Hypercube over a power-of-two device count: Hamming distance."""

    def _validate(self) -> None:
        if self.num_devices & (self.num_devices - 1):
            raise TopologyError(
                f"hypercube needs a power-of-two device count, got {self.num_devices}"
            )

    @property
    def dimensions(self) -> int:
        return int(math.log2(self.num_devices))

    @property
    def name(self) -> str:
        return f"hypercube{self.dimensions}d"

    def dist(self, i: int, j: int) -> int:
        self._check(i, j)
        return (i ^ j).bit_count()


def make_topology(name: str, num_devices: int) -> Topology:
    """Factory by name: chain | ring | bus | star | mesh | hypercube.

    ``mesh`` lays the devices out as close to square as possible.
    """
    key = name.lower()
    if key in ("chain", "daisy-chain", "daisychain"):
        return ChainTopology(num_devices)
    if key == "ring":
        return RingTopology(num_devices)
    if key == "bus":
        return BusTopology(num_devices)
    if key == "star":
        return StarTopology(num_devices)
    if key == "mesh":
        rows = max(1, int(math.isqrt(num_devices)))
        while num_devices % rows:
            rows -= 1
        return MeshTopology(rows, num_devices // rows)
    if key == "hypercube":
        return HypercubeTopology(num_devices)
    raise TopologyError(f"unknown topology {name!r}")
