"""Device models: FPGA parts, slot grids, and HBM channels."""

from .fpga import FPGAInstance, FPGAPart, HBMChannel, Slot
from .parts import ALVEO_U250, ALVEO_U55C, get_part, known_parts

__all__ = [
    "ALVEO_U250",
    "ALVEO_U55C",
    "FPGAInstance",
    "FPGAPart",
    "HBMChannel",
    "Slot",
    "get_part",
    "known_parts",
]
