"""Catalog of known FPGA parts.

The Alveo U55C numbers come from the paper: Table 2 for resources, the
Section 1/2 discussion for HBM (16 GiB, 460 GB/s), on-chip memory (43 MB,
35 TB/s), two QSFP28 ports, and a 300 MHz frequency ceiling (Section 5).
The U250 is included because Figure 2 discusses it; its totals follow the
public datasheet, rounded.  Numbers are per card.
"""

from __future__ import annotations

from ..errors import DeviceError
from ..hls.resource import ResourceVector
from .fpga import FPGAPart

#: Conversion: the paper quotes HBM bandwidth in GB/s; links in Gbps.
_GBYTE_TO_GBIT = 8.0

ALVEO_U55C = FPGAPart(
    name="xcu55c",
    resources=ResourceVector(
        lut=1_146_240, ff=2_292_480, bram=1_776, dsp=8_376, uram=960
    ),
    grid_rows=3,
    grid_cols=2,
    num_hbm_channels=32,
    hbm_total_bandwidth_gbps=460.0 * _GBYTE_TO_GBIT,
    hbm_capacity_gib=16.0,
    onchip_bandwidth_gbps=35_000.0 * _GBYTE_TO_GBIT,
    onchip_capacity_mib=43.0,
    num_qsfp_ports=2,
    max_frequency_mhz=300.0,
    hbm_row=0,
)

ALVEO_U250 = FPGAPart(
    name="xcu250",
    resources=ResourceVector(
        lut=1_728_000, ff=3_456_000, bram=2_688, dsp=12_288, uram=1_280
    ),
    grid_rows=4,
    grid_cols=2,
    num_hbm_channels=0,
    hbm_total_bandwidth_gbps=0.0,
    hbm_capacity_gib=0.0,
    onchip_bandwidth_gbps=38_000.0 * _GBYTE_TO_GBIT,
    onchip_capacity_mib=54.0,
    num_qsfp_ports=2,
    max_frequency_mhz=300.0,
    hbm_row=0,
)

_CATALOG: dict[str, FPGAPart] = {
    ALVEO_U55C.name: ALVEO_U55C,
    "u55c": ALVEO_U55C,
    ALVEO_U250.name: ALVEO_U250,
    "u250": ALVEO_U250,
}


def get_part(name: str) -> FPGAPart:
    """Look up a part by name (case-insensitive; accepts short aliases).

    Raises:
        DeviceError: if the part is not in the catalog.
    """
    part = _CATALOG.get(name.lower())
    if part is None:
        raise DeviceError(
            f"unknown FPGA part {name!r}; known parts: {sorted(set(_CATALOG))}"
        )
    return part


def known_parts() -> list[str]:
    """Canonical part names available in the catalog."""
    return sorted({part.name for part in _CATALOG.values()})


def catalog_parts() -> list[FPGAPart]:
    """The distinct catalog parts (used by catalog-wide design rules)."""
    seen: dict[str, FPGAPart] = {}
    for part in _CATALOG.values():
        seen.setdefault(part.name, part)
    return [seen[name] for name in sorted(seen)]
