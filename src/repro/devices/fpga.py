"""FPGA device models: parts, dies, and the slot grid abstraction.

The paper (Section 4.5) presents each FPGA to the floorplanner as a grid
of *slots* delimited by die (SLR) boundaries and the hard-IP column: the
Alveo U55C becomes a 2-column x 3-row grid of six slots.  Each slot owns a
share of the die's programmable resources; the intra-FPGA floorplanner
assigns tasks to slots and pays a cost per row/column crossing (Eq. 4).

HBM channels are physically attached to the bottom die (row 0), which is
why HBM channel binding matters: tasks bound to HBM channels gravitate to
row 0 and can congest it (the KNN motivating example in Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeviceError
from ..hls.resource import ResourceVector


@dataclass(frozen=True, slots=True)
class Slot:
    """One floorplanning slot: a (row, col) cell of the device grid."""

    row: int
    col: int
    capacity: ResourceVector

    @property
    def name(self) -> str:
        return f"SLOT_X{self.col}Y{self.row}"

    def distance_to(self, other: "Slot") -> int:
        """Manhattan distance in grid units (the Eq. 4 cost metric)."""
        return abs(self.row - other.row) + abs(self.col - other.col)


@dataclass(frozen=True, slots=True)
class HBMChannel:
    """One pseudo-channel of the HBM stack.

    All channels of the U55C surface in the bottom die; ``port_col`` records
    which half of the bottom row the channel's AXI port lands in, which the
    HBM binding explorer uses to spread traffic across the row.
    """

    index: int
    bandwidth_gbps: float
    port_col: int


@dataclass(frozen=True, slots=True)
class FPGAPart:
    """A device part description: the static facts the toolchain needs.

    Attributes:
        name: part name, e.g. ``"xcu55c"``.
        resources: total programmable resources (paper Table 2 for U55C).
        grid_rows / grid_cols: slot grid dimensions (3 x 2 for U55C).
        num_hbm_channels: pseudo-channels exposed to user logic.
        hbm_total_bandwidth_gbps: aggregate HBM bandwidth (460 GB/s -> 3680 Gbps).
        hbm_capacity_gib: HBM capacity in GiB.
        onchip_bandwidth_gbps: aggregate on-chip SRAM bandwidth (35 TB/s).
        onchip_capacity_mib: on-chip memory capacity (43 MB on U55C).
        num_qsfp_ports: QSFP28 network ports.
        max_frequency_mhz: board frequency ceiling (300 MHz for U55C).
        hbm_row: grid row adjacent to the HBM stack (0 = bottom).
    """

    name: str
    resources: ResourceVector
    grid_rows: int
    grid_cols: int
    num_hbm_channels: int
    hbm_total_bandwidth_gbps: float
    hbm_capacity_gib: float
    onchip_bandwidth_gbps: float
    onchip_capacity_mib: float
    num_qsfp_ports: int
    max_frequency_mhz: float
    hbm_row: int = 0
    #: Fraction of a pseudo-channel's peak a streaming port achieves in
    #: practice (row activation/refresh overheads; HBM Connect measures
    #: far lower under contention).
    hbm_stream_efficiency: float = 0.8

    def __post_init__(self) -> None:
        if self.grid_rows < 1 or self.grid_cols < 1:
            raise DeviceError(f"{self.name}: grid must be at least 1x1")
        if self.hbm_row >= self.grid_rows:
            raise DeviceError(f"{self.name}: hbm_row outside grid")

    @property
    def num_slots(self) -> int:
        return self.grid_rows * self.grid_cols

    @property
    def slot_capacity(self) -> ResourceVector:
        """Resources of one slot, assuming an even split across the grid."""
        return self.resources / self.num_slots

    @property
    def hbm_channel_bandwidth_gbps(self) -> float:
        if self.num_hbm_channels == 0:
            return 0.0
        return self.hbm_total_bandwidth_gbps / self.num_hbm_channels

    @property
    def hbm_channel_effective_gbps(self) -> float:
        """Achievable streaming bandwidth of one pseudo-channel."""
        return self.hbm_channel_bandwidth_gbps * self.hbm_stream_efficiency

    def slots(self) -> list[Slot]:
        """All slots of the grid, row-major from the bottom-left corner."""
        cap = self.slot_capacity
        return [
            Slot(row=r, col=c, capacity=cap)
            for r in range(self.grid_rows)
            for c in range(self.grid_cols)
        ]

    def slot(self, row: int, col: int) -> Slot:
        if not (0 <= row < self.grid_rows and 0 <= col < self.grid_cols):
            raise DeviceError(
                f"{self.name}: slot ({row},{col}) outside "
                f"{self.grid_rows}x{self.grid_cols} grid"
            )
        return Slot(row=row, col=col, capacity=self.slot_capacity)

    def hbm_channels(self) -> list[HBMChannel]:
        """The HBM pseudo-channels, split evenly across the bottom-row columns."""
        per_channel = self.hbm_channel_bandwidth_gbps
        channels = []
        for i in range(self.num_hbm_channels):
            col = i * self.grid_cols // max(1, self.num_hbm_channels)
            channels.append(HBMChannel(index=i, bandwidth_gbps=per_channel, port_col=col))
        return channels


@dataclass(slots=True)
class FPGAInstance:
    """A physical device in a cluster: a part plus a device id.

    ``device_num`` is the id used by the topology distance functions
    (Eqs. 3 and the ring variant).  ``node`` identifies the host server the
    card is plugged into; crossing nodes uses the slow inter-node path
    (Section 5.7).
    """

    device_num: int
    part: FPGAPart
    node: int = 0
    reserved: ResourceVector = field(default_factory=ResourceVector.zero)

    @property
    def name(self) -> str:
        return f"FPGA{self.device_num}"

    @property
    def usable_resources(self) -> ResourceVector:
        """Total resources minus platform/shell reservations."""
        return (self.part.resources - self.reserved).clamp_nonnegative()
