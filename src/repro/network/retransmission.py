"""Retransmission math for lossy links.

The transfer models in this package are analytic expectations, so fault
injection extends them with *expected* retransmission costs rather than
sampled ones — deterministic, differentiable in the loss rate, and exactly
zero-overhead at zero loss (the healthy bit-for-bit parity guarantee).

Two regimes:

* **Go-back-N** (the AlveoLink RoCE path): a lost packet forces the whole
  in-flight window to be resent, so the expected number of transmissions
  per delivered packet is ``(1 - p + p*W) / (1 - p)`` for loss probability
  ``p`` and window ``W`` — the classic GBN throughput result.  ``W = 1``
  degenerates to selective-repeat's ``1 / (1 - p)``.
* **Timeout + bounded exponential backoff** (the host MPI rendezvous):
  a failed attempt costs one timeout, then retries with geometrically
  growing waits up to a cap; the expected added latency is the
  probability-weighted sum over the bounded retry ladder.

No imports from the rest of the package — these are free functions any
model layer can call without creating cycles.
"""

from __future__ import annotations

#: Loss rates are clamped below 1 so expectations stay finite; anything
#: this close to certain loss is a down link, not a lossy one.
MAX_LOSS_RATE = 0.999


def expected_transmissions(loss_rate: float, window_packets: int = 1) -> float:
    """Expected wire transmissions per delivered packet under go-back-N.

    Exactly ``1.0`` when ``loss_rate <= 0`` — multiplying a healthy
    transfer time by this factor is a bit-for-bit no-op.

    Args:
        loss_rate: per-packet loss probability in ``[0, 1)``.
        window_packets: go-back-N window size ``W``; 1 gives the
            selective-repeat expectation ``1 / (1 - p)``.
    """
    if loss_rate <= 0.0:
        return 1.0
    if window_packets < 1:
        raise ValueError(f"window must be at least 1 packet, got {window_packets}")
    p = min(loss_rate, MAX_LOSS_RATE)
    return (1.0 - p + p * window_packets) / (1.0 - p)


def expected_backoff_seconds(
    loss_rate: float,
    timeout_s: float,
    backoff_base: float = 2.0,
    max_retries: int = 8,
    max_backoff_s: float | None = None,
) -> float:
    """Expected extra latency from a timeout-and-retry handshake.

    Models a rendezvous that fails outright with probability ``loss_rate``
    per attempt: the k-th failure costs the current timeout, after which
    the timeout multiplies by ``backoff_base`` (capped at
    ``max_backoff_s``), for at most ``max_retries`` retries.  Exactly
    ``0.0`` when ``loss_rate <= 0`` — healthy paths pay nothing.
    """
    if loss_rate <= 0.0:
        return 0.0
    if timeout_s < 0.0:
        raise ValueError(f"timeout must be non-negative, got {timeout_s}")
    if backoff_base < 1.0:
        raise ValueError(f"backoff base must be >= 1, got {backoff_base}")
    if max_retries < 0:
        raise ValueError(f"retry count must be non-negative, got {max_retries}")
    p = min(loss_rate, MAX_LOSS_RATE)
    total = 0.0
    wait = timeout_s
    p_reached = 1.0
    for _ in range(max_retries):
        p_reached *= p
        total += p_reached * wait
        wait *= backoff_base
        if max_backoff_s is not None:
            wait = min(wait, max_backoff_s)
    return total
