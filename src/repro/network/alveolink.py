"""AlveoLink: the inter-FPGA communication substrate (Section 4.4).

AlveoLink implements RoCE v2 over the QSFP28 ports: reliable, lossless,
in-order delivery with a ~1 us round trip and ~5 % total resource
overhead per port on the U55C.  The paper's Figure 8 shows achieved
throughput climbing with transfer size toward a ~90 Gbps plateau, and
Section 7 notes strong sensitivity to the packet size (a 64 MB transfer
takes 6.53 ms with 64 B packets vs 3.96 ms with 128 B).

The analytic model here reproduces those behaviours:

* per-packet protocol framing makes small packets inefficient:
  ``efficiency = packet / (packet + header)``;
* per-message setup plus the propagation latency dominates small
  transfers, giving Figure 8's ramp;
* throughput is capped at the ~90 Gbps the hardware sustains.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.fpga import FPGAPart
from ..hls.resource import ResourceVector
from .retransmission import expected_transmissions


@dataclass(frozen=True, slots=True)
class AlveoLinkModel:
    """Analytic performance/resource model of one AlveoLink port."""

    line_rate_gbps: float = 100.0
    saturated_gbps: float = 90.0
    round_trip_latency_us: float = 1.0
    setup_us: float = 0.5
    header_bytes: int = 18
    default_packet_bytes: int = 4096
    recommended_fifo_depth: int = 64
    #: Per-port resource overheads as fractions of the whole device
    #: (Section 5.6: 2.04 % LUT, 2.94 % FF, 2.06 % BRAM, 0 % DSP/URAM).
    lut_overhead_fraction: float = 0.0204
    ff_overhead_fraction: float = 0.0294
    bram_overhead_fraction: float = 0.0206

    @property
    def one_way_latency_s(self) -> float:
        return self.round_trip_latency_us * 1e-6 / 2.0

    def packet_efficiency(self, packet_bytes: int | None = None) -> float:
        """Fraction of line rate carrying payload for a packet size."""
        if packet_bytes is not None and packet_bytes <= 0:
            raise ValueError("packet size must be positive")
        packet = packet_bytes or self.default_packet_bytes
        return packet / (packet + self.header_bytes)

    def effective_gbps(self, packet_bytes: int | None = None) -> float:
        """Sustained payload throughput for a given packet size."""
        return min(
            self.saturated_gbps,
            self.line_rate_gbps * self.packet_efficiency(packet_bytes),
        )

    def transfer_seconds(
        self,
        volume_bytes: float,
        packet_bytes: int | None = None,
        hops: int = 1,
        *,
        loss_rate: float = 0.0,
        bandwidth_factor: float = 1.0,
    ) -> float:
        """Time to move ``volume_bytes`` across ``hops`` links.

        Multi-hop transfers in a ring are store-and-forward at packet
        granularity, so bandwidth is paid once and latency per hop.

        An injected ``loss_rate`` inflates the wire term by the go-back-N
        expected-transmissions factor (RoCE recovers losses by rolling the
        in-flight window back, sized here by ``recommended_fifo_depth``),
        shifting the Figure 8 ramp down and to the right; a
        ``bandwidth_factor`` below 1 models a degraded lane.  At the
        defaults the healthy formula is untouched bit-for-bit.
        """
        if volume_bytes <= 0:
            return 0.0
        wire = volume_bytes * 8.0 / (self.effective_gbps(packet_bytes) * 1e9)
        if loss_rate > 0.0 or bandwidth_factor != 1.0:
            wire *= expected_transmissions(
                loss_rate, window_packets=self.recommended_fifo_depth
            )
            wire /= bandwidth_factor
        return self.setup_us * 1e-6 + hops * self.one_way_latency_s + wire

    def throughput_gbps(
        self,
        volume_bytes: float,
        packet_bytes: int | None = None,
        *,
        loss_rate: float = 0.0,
        bandwidth_factor: float = 1.0,
    ) -> float:
        """Achieved end-to-end throughput for one transfer (Figure 8)."""
        if volume_bytes <= 0:
            return 0.0
        seconds = self.transfer_seconds(
            volume_bytes,
            packet_bytes,
            loss_rate=loss_rate,
            bandwidth_factor=bandwidth_factor,
        )
        return volume_bytes * 8.0 / (seconds * 1e9)


#: The default model instance used across the package.
ALVEOLINK = AlveoLinkModel()


def port_overhead(part: FPGAPart, model: AlveoLinkModel = ALVEOLINK) -> ResourceVector:
    """Resource cost of instantiating one AlveoLink port on ``part``."""
    return ResourceVector(
        lut=part.resources.lut * model.lut_overhead_fraction,
        ff=part.resources.ff * model.ff_overhead_fraction,
        bram=part.resources.bram * model.bram_overhead_fraction,
    )
