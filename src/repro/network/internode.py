"""The inter-node transfer path (Section 5.7).

Crossing server nodes cannot use the QSFP fabric: intermediate data is
read from the source FPGA's device memory into host memory, shipped over
a 10 Gbps host Ethernet link with MPI, and written back into the second
node's device memory.  The paper measures this path as roughly an order
of magnitude slower than the intra-node FPGA links, which is why the
8-FPGA stencil run *loses* to a single FPGA while PageRank barely wins.

Table 9's bandwidth hierarchy is exposed here for the bench that
regenerates it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class InterNodePath:
    """Device -> host -> wire -> host -> device staging model."""

    pcie_gbps: float = 128.0  # Gen3 x16 effective DMA rate per direction
    wire_gbps: float = 10.0
    #: Fraction of the 10 Gbps line rate MPI-over-TCP actually sustains
    #: for large staged transfers (kernel copies, TCP windows, MPI
    #: rendezvous); ~40 % is typical for unturned 10 GbE clusters.
    wire_efficiency: float = 0.4
    mpi_latency_us: float = 50.0
    host_copy_overhead_us: float = 20.0

    def transfer_seconds(self, volume_bytes: float) -> float:
        """End-to-end time for one inter-node handoff of ``volume_bytes``."""
        if volume_bytes <= 0:
            return 0.0
        bits = volume_bytes * 8.0
        device_to_host = bits / (self.pcie_gbps * 1e9)
        wire = bits / (self.wire_gbps * self.wire_efficiency * 1e9)
        host_to_device = bits / (self.pcie_gbps * 1e9)
        fixed = (self.mpi_latency_us + 2 * self.host_copy_overhead_us) * 1e-6
        return fixed + device_to_host + wire + host_to_device

    def effective_gbps(self, volume_bytes: float) -> float:
        if volume_bytes <= 0:
            return 0.0
        return volume_bytes * 8.0 / (self.transfer_seconds(volume_bytes) * 1e9)


#: Default instance matching the paper's testbed.
INTER_NODE_PATH = InterNodePath()


@dataclass(frozen=True, slots=True)
class BandwidthTier:
    """One row of Table 9's hierarchy of data-transfer bandwidths."""

    name: str
    bandwidth_gbps: float
    bandwidth_label: str


BANDWIDTH_HIERARCHY: tuple[BandwidthTier, ...] = (
    BandwidthTier("On-chip (SRAM)", 35_000.0 * 8, "35TBps"),
    BandwidthTier("Off-chip (HBM)", 460.0 * 8, "460GBps"),
    BandwidthTier("Inter-FPGA", 100.0, "100Gbps"),
    BandwidthTier("Inter-Node", 10.0, "10Gbps"),
)
