"""The inter-node transfer path (Section 5.7).

Crossing server nodes cannot use the QSFP fabric: intermediate data is
read from the source FPGA's device memory into host memory, shipped over
a 10 Gbps host Ethernet link with MPI, and written back into the second
node's device memory.  The paper measures this path as roughly an order
of magnitude slower than the intra-node FPGA links, which is why the
8-FPGA stencil run *loses* to a single FPGA while PageRank barely wins.

Table 9's bandwidth hierarchy is exposed here for the bench that
regenerates it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .retransmission import expected_backoff_seconds, expected_transmissions


@dataclass(frozen=True, slots=True)
class InterNodePath:
    """Device -> host -> wire -> host -> device staging model."""

    pcie_gbps: float = 128.0  # Gen3 x16 effective DMA rate per direction
    wire_gbps: float = 10.0
    #: Fraction of the 10 Gbps line rate MPI-over-TCP actually sustains
    #: for large staged transfers (kernel copies, TCP windows, MPI
    #: rendezvous); ~40 % is typical for unturned 10 GbE clusters.
    wire_efficiency: float = 0.4
    mpi_latency_us: float = 50.0
    host_copy_overhead_us: float = 20.0
    #: Rendezvous retry ladder under loss: first timeout, growth factor,
    #: bounded retry count, and a cap on any single wait.
    retry_timeout_us: float = 500.0
    retry_backoff_base: float = 2.0
    retry_max_attempts: int = 8
    retry_max_backoff_us: float = 16_000.0

    def transfer_seconds(
        self,
        volume_bytes: float,
        *,
        loss_rate: float = 0.0,
        bandwidth_factor: float = 1.0,
    ) -> float:
        """End-to-end time for one inter-node handoff of ``volume_bytes``.

        Loss hits this path twice: TCP's selective retransmission
        inflates the wire term by the expected-transmissions factor
        (window 1 — TCP resends only the lost segment), and the MPI
        rendezvous pays an expected timeout + bounded exponential-backoff
        penalty per handoff.  Healthy defaults reproduce the fault-free
        number bit-for-bit.
        """
        if volume_bytes <= 0:
            return 0.0
        bits = volume_bytes * 8.0
        device_to_host = bits / (self.pcie_gbps * 1e9)
        wire = bits / (self.wire_gbps * self.wire_efficiency * 1e9)
        host_to_device = bits / (self.pcie_gbps * 1e9)
        fixed = (self.mpi_latency_us + 2 * self.host_copy_overhead_us) * 1e-6
        if loss_rate > 0.0 or bandwidth_factor != 1.0:
            wire *= expected_transmissions(loss_rate, window_packets=1)
            wire /= bandwidth_factor
            fixed += expected_backoff_seconds(
                loss_rate,
                timeout_s=self.retry_timeout_us * 1e-6,
                backoff_base=self.retry_backoff_base,
                max_retries=self.retry_max_attempts,
                max_backoff_s=self.retry_max_backoff_us * 1e-6,
            )
        return fixed + device_to_host + wire + host_to_device

    def effective_gbps(
        self,
        volume_bytes: float,
        *,
        loss_rate: float = 0.0,
        bandwidth_factor: float = 1.0,
    ) -> float:
        if volume_bytes <= 0:
            return 0.0
        seconds = self.transfer_seconds(
            volume_bytes, loss_rate=loss_rate, bandwidth_factor=bandwidth_factor
        )
        return volume_bytes * 8.0 / (seconds * 1e9)


#: Default instance matching the paper's testbed.
INTER_NODE_PATH = InterNodePath()


@dataclass(frozen=True, slots=True)
class BandwidthTier:
    """One row of Table 9's hierarchy of data-transfer bandwidths."""

    name: str
    bandwidth_gbps: float
    bandwidth_label: str


BANDWIDTH_HIERARCHY: tuple[BandwidthTier, ...] = (
    BandwidthTier("On-chip (SRAM)", 35_000.0 * 8, "35TBps"),
    BandwidthTier("Off-chip (HBM)", 460.0 * 8, "460GBps"),
    BandwidthTier("Inter-FPGA", 100.0, "100Gbps"),
    BandwidthTier("Inter-Node", 10.0, "10Gbps"),
)
