"""Catalog of inter-FPGA communication protocols (paper Table 10).

The paper surveys prior networking stacks for FPGAs and compares their
orchestration style (host- vs device-initiated), on-board resource
overhead, and achieved throughput.  The catalog below carries Table 10
verbatim so the comparison bench can regenerate it, and so the simulator
can swap AlveoLink for any alternative in what-if studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Orchestration(Enum):
    """Who initiates inter-FPGA transfers."""

    HOST = "host"
    DEVICE = "device"


@dataclass(frozen=True, slots=True)
class ProtocolSpec:
    """One row of Table 10."""

    name: str
    orchestration: Orchestration
    resource_overhead_percent: float | None  # None = not reported
    throughput_gbps: float
    reference: str

    @property
    def is_device_initiated(self) -> bool:
        return self.orchestration is Orchestration.DEVICE


TMD_MPI = ProtocolSpec("TMD-MPI", Orchestration.HOST, 26.0, 10.0, "Saldana & Chow, FPL'06")
GALAPAGOS = ProtocolSpec("Galapagos", Orchestration.DEVICE, 11.5, 10.0, "Tarafdar et al., IEEE Micro'18")
SMI = ProtocolSpec("SMI", Orchestration.DEVICE, 2.0, 40.0, "De Matteis et al., SC'19")
EASYNET = ProtocolSpec("EasyNet", Orchestration.DEVICE, 10.0, 90.0, "He et al., FPL'21")
ZRLMPI = ProtocolSpec("ZRLMPI", Orchestration.HOST, None, 10.0, "Ringlein et al., FCCM'20")
ACCL = ProtocolSpec("ACCL", Orchestration.HOST, 16.0, 80.0, "He et al., H2RC'21")
ALVEOLINK_SPEC = ProtocolSpec("AlveoLink", Orchestration.DEVICE, 5.0, 90.0, "Xilinx AlveoLink")

ALL_PROTOCOLS: tuple[ProtocolSpec, ...] = (
    TMD_MPI,
    GALAPAGOS,
    SMI,
    EASYNET,
    ZRLMPI,
    ACCL,
    ALVEOLINK_SPEC,
)


def best_protocol(max_overhead_percent: float | None = None) -> ProtocolSpec:
    """Highest-throughput protocol under an optional overhead budget.

    With a ~5 % budget this returns AlveoLink — the paper's Section 6.1
    argument: EasyNet matches its 90 Gbps but costs twice the area.
    """
    candidates = [
        p
        for p in ALL_PROTOCOLS
        if max_overhead_percent is None
        or (
            p.resource_overhead_percent is not None
            and p.resource_overhead_percent <= max_overhead_percent
        )
    ]
    if not candidates:
        raise ValueError("no protocol satisfies the overhead budget")
    return max(
        candidates,
        key=lambda p: (p.throughput_gbps, -(p.resource_overhead_percent or 0.0)),
    )
