"""Network substrate models: AlveoLink, protocol catalog, inter-node path."""

from .alveolink import ALVEOLINK, AlveoLinkModel, port_overhead
from .internode import (
    BANDWIDTH_HIERARCHY,
    INTER_NODE_PATH,
    BandwidthTier,
    InterNodePath,
)
from .protocols import (
    ALL_PROTOCOLS,
    ALVEOLINK_SPEC,
    Orchestration,
    ProtocolSpec,
    best_protocol,
)
from .retransmission import expected_backoff_seconds, expected_transmissions

__all__ = [
    "ALL_PROTOCOLS",
    "ALVEOLINK",
    "ALVEOLINK_SPEC",
    "BANDWIDTH_HIERARCHY",
    "INTER_NODE_PATH",
    "AlveoLinkModel",
    "BandwidthTier",
    "InterNodePath",
    "Orchestration",
    "ProtocolSpec",
    "best_protocol",
    "expected_backoff_seconds",
    "expected_transmissions",
    "port_overhead",
]
