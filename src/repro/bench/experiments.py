"""Experiment definitions: one function per paper table/figure.

Each function returns ``(headers, rows)`` ready for
:func:`repro.bench.format.render_table`; the ``benchmarks/`` scripts wrap
them in pytest-benchmark harnesses.  ``quick=True`` trims the swept
configurations (never the model fidelity) so smoke runs stay fast.
"""

from __future__ import annotations

import os
import time
from typing import Any, Sequence

from ..apps import common as app_common
from ..apps import graphgen
from ..apps.cnn import GRID_FOR_FLOW, build_cnn, cnn_config_for_flow
from ..apps.common import AppRun, run_flow
from ..apps.knn import build_knn, knn_config_for_flow
from ..apps.pagerank import build_pagerank, pagerank_config_for_flow
from ..apps.stencil import build_stencil, stencil_config_for_flow
from ..cluster.cluster import paper_testbed
from ..core.compiler import CompilerConfig, compile_design
from ..core.inter_floorplan import InterFloorplanConfig, floorplan_inter
from ..devices.parts import ALVEO_U55C
from ..hls.resource import RESOURCE_KINDS
from ..hls.synthesis import synthesize
from ..network.alveolink import ALVEOLINK
from ..network.internode import BANDWIDTH_HIERARCHY
from ..network.protocols import ALL_PROTOCOLS
from ..perf.sweep import SweepSpec, run_sweep
from ..sim.execution import SimulationConfig, simulate

Rows = tuple[Sequence[str], list[list[Any]]]

#: The flows every latency experiment sweeps.
FLOWS = ("F1-V", "F1-T", "F2", "F3", "F4")


def is_quick() -> bool:
    """True when the REPRO_QUICK environment switch is set."""
    return os.environ.get("REPRO_QUICK", "") not in ("", "0")


# ---------------------------------------------------------------------------
# App-level measurement helpers
# ---------------------------------------------------------------------------


def run_stencil(iterations: int, flow: str, rows: int = 4096, cols: int = 4096) -> AppRun:
    config = stencil_config_for_flow(iterations, flow, rows=rows, cols=cols)
    # In temporal mode each pass's output frame must travel from the last
    # FPGA of the chain back to the first one before the next pass can
    # start — over the QSFP ring within a node, or over the 10 Gbps host
    # path when the chain spans nodes (the Section 5.7 bottleneck).
    wraparound_s = 0.0
    count = app_common.flow_num_fpgas(flow)
    if config.resolved_mode == "temporal" and count > 1:
        from ..network.alveolink import ALVEOLINK
        from ..network.internode import INTER_NODE_PATH

        cluster = paper_testbed(count)
        if cluster.same_node(count - 1, 0):
            wraparound_s = ALVEOLINK.transfer_seconds(config.frame_bytes)
        else:
            wraparound_s = INTER_NODE_PATH.transfer_seconds(config.frame_bytes)
    return run_flow(
        build_stencil(config),
        "stencil",
        flow,
        repeats=config.host_repeats,
        per_repeat_overhead_s=wraparound_s,
        label=f"{flow}/i{iterations}",
    )


def run_pagerank(network: str, flow: str, sweeps: int = 20, scale: float = 1.0) -> AppRun:
    spec = graphgen.get_network(network)
    config, _ = pagerank_config_for_flow(spec, flow, scale=scale)
    return run_flow(
        build_pagerank(config),
        "pagerank",
        flow,
        repeats=sweeps,
        label=f"{flow}/{network}",
    )


def run_knn(flow: str, n: int, d: int, k: int = 10) -> AppRun:
    config = knn_config_for_flow(flow, n=n, d=d, k=k)
    return run_flow(build_knn(config), "knn", flow, label=f"{flow}/N{n}/D{d}")


def run_cnn(flow: str) -> AppRun:
    config = cnn_config_for_flow(flow)
    return run_flow(build_cnn(config), "cnn", flow, label=f"{flow}/{config.grid_name}")


# ---------------------------------------------------------------------------
# Table 1 / Table 2
# ---------------------------------------------------------------------------


def table1_comparison() -> Rows:
    """The qualitative landscape plus our modeled TAPA-CS Fmax."""
    headers = ("Method", "HLS", "Ethernet", "Floorplan", "Pipelining",
               "Topology", "AutoPartition", "Fmax (MHz)")
    rows = [
        ["FPGA'12", "no", "no", "no", "no", "no", "no", 85],
        ["Simulation-based", "no", "no", "no", "no", "no", "yes", "-"],
        ["Virtualization-based", "yes", "yes", "no", "no", "no", "yes", "100-300"],
        ["CNN/DNN-specific", "yes", "yes", "no", "no", "no", "yes", 240],
        ["TAPA-CS (this repro)", "yes", "yes", "yes", "yes", "yes", "yes", 300],
    ]
    return headers, rows


def table2_resources() -> Rows:
    headers = ("Resource Type", "Available")
    rows = [[kind.upper(), int(ALVEO_U55C.resources[kind])] for kind in RESOURCE_KINDS]
    return headers, rows


# ---------------------------------------------------------------------------
# Table 3: headline speed-ups
# ---------------------------------------------------------------------------


def table3_speedups(quick: bool | None = None, jobs: int | None = None) -> Rows:
    """Speed-up of F1-T/F2/F3/F4 vs F1-V, averaged across configurations.

    Every (benchmark, flow, parameter) run is independent, so the whole
    table fans out through the sweep executor; rows are identical to the
    serial path because each run is a pure function of its inputs.
    """
    quick = is_quick() if quick is None else quick
    stencil_iters = (64,) if quick else (64, 512)
    knn_dims = (16,) if quick else (2, 16, 128)
    networks = ("cit-Patents",) if quick else ("cit-Patents", "web-Google")

    headers = ("Benchmark", "F1-V", "F1-T", "F2", "F3", "F4")

    tagged: list[tuple[str, str, SweepSpec]] = []
    for flow in FLOWS:
        for iters in stencil_iters:
            tagged.append(
                ("Stencil", flow,
                 SweepSpec(run_stencil, (iters, flow),
                           key=f"stencil/{flow}/i{iters}"))
            )
    for flow in FLOWS:
        for net in networks:
            tagged.append(
                ("PageRank", flow,
                 SweepSpec(run_pagerank, (net, flow),
                           key=f"pagerank/{flow}/{net}"))
            )
    for flow in FLOWS:
        for d in knn_dims:
            tagged.append(
                ("KNN", flow,
                 SweepSpec(run_knn, (flow,), {"n": 4_000_000, "d": d},
                           key=f"knn/{flow}/n4M/d{d}"))
            )
    for flow in FLOWS:
        tagged.append(("CNN", flow, SweepSpec(run_cnn, (flow,), key=f"cnn/{flow}")))

    results = run_sweep([spec for _, _, spec in tagged], jobs=jobs)
    runs: dict[tuple[str, str], list[AppRun]] = {}
    for (bench, flow, _), run in zip(tagged, results):
        runs.setdefault((bench, flow), []).append(run)

    rows = []
    for bench in ("Stencil", "PageRank", "KNN", "CNN"):
        speedups = []
        for flow in FLOWS:
            ratios = [
                base.latency_s / run.latency_s
                for base, run in zip(runs[(bench, "F1-V")], runs[(bench, flow)])
            ]
            speedups.append(sum(ratios) / len(ratios))
        rows.append([bench] + [round(s, 2) for s in speedups])
    return headers, rows


# ---------------------------------------------------------------------------
# Table 4 / Figures 10-11: stencil
# ---------------------------------------------------------------------------


def table4_stencil_intensity() -> Rows:
    """Compute intensity and inter-FPGA volume over iteration counts."""
    headers = ("Iters", "Ops/Byte", "Volume (MB)")
    rows = []
    for iters in (64, 128, 256, 512):
        config = stencil_config_for_flow(iters, "F4")
        run = run_stencil(iters, "F4")
        rows.append(
            [iters, round(config.compute_intensity(), 0), round(run.inter_fpga_volume_mb, 2)]
        )
    return headers, rows


def fig10_stencil_latency(
    quick: bool | None = None, jobs: int | None = None
) -> Rows:
    quick = is_quick() if quick is None else quick
    iter_list = (64, 512) if quick else (64, 128, 256, 512)
    headers = ("Iters",) + FLOWS
    specs = [
        SweepSpec(run_stencil, (iters, flow), key=f"stencil/{flow}/i{iters}")
        for iters in iter_list
        for flow in FLOWS
    ]
    results = iter(run_sweep(specs, jobs=jobs))
    rows = []
    for iters in iter_list:
        rows.append([iters] + [round(next(results).latency_ms, 2) for _ in FLOWS])
    return headers, rows


def fig11_stencil_resources() -> Rows:
    return _resource_figure(lambda flow: build_stencil(stencil_config_for_flow(64, flow)))


def _resource_figure(graph_for_flow) -> Rows:
    """Per-FPGA resource utilization, F1-T vs the four F4 devices."""
    headers = ("Design", "LUT%", "FF%", "BRAM%", "DSP%", "URAM%")
    rows = []
    tapa = app_common.compile_flow(graph_for_flow("F1-T"), "F1-T")
    util = tapa.device_utilization(0)
    rows.append(["F1-T"] + [round(util[k] * 100, 1) for k in RESOURCE_KINDS])
    f4 = app_common.compile_flow(graph_for_flow("F4"), "F4")
    for device in sorted(set(f4.comm.assignment.values())):
        util = f4.device_utilization(device)
        rows.append(
            [f"F4-{device + 1}"] + [round(util[k] * 100, 1) for k in RESOURCE_KINDS]
        )
    return headers, rows


# ---------------------------------------------------------------------------
# Table 5 / Figures 12-13: PageRank
# ---------------------------------------------------------------------------


def table5_networks() -> Rows:
    headers = ("Network", "Nodes", "Edges")
    rows = [[s.name, s.nodes, s.edges] for s in graphgen.SNAP_NETWORKS]
    return headers, rows


def fig12_pagerank_latency(
    quick: bool | None = None, jobs: int | None = None
) -> Rows:
    quick = is_quick() if quick is None else quick
    networks = (
        ("cit-Patents",)
        if quick
        else tuple(s.name for s in graphgen.SNAP_NETWORKS)
    )
    headers = ("Network",) + FLOWS
    specs = [
        SweepSpec(run_pagerank, (network, flow),
                  key=f"pagerank/{flow}/{network}")
        for network in networks
        for flow in FLOWS
    ]
    results = iter(run_sweep(specs, jobs=jobs))
    rows = []
    for network in networks:
        rows.append(
            [network] + [round(next(results).latency_ms, 1) for _ in FLOWS]
        )
    return headers, rows


def fig13_pagerank_resources() -> Rows:
    def build(flow):
        config, _ = pagerank_config_for_flow(
            graphgen.get_network("cit-Patents"), flow
        )
        return build_pagerank(config)

    return _resource_figure(build)


# ---------------------------------------------------------------------------
# Table 6 / Figures 14-16: KNN
# ---------------------------------------------------------------------------


def table6_knn_params() -> Rows:
    headers = ("Parameter", "Values")
    rows = [
        ["N: dataset points", "1M, 2M, 3M, 4M, 8M"],
        ["D: feature dimensions", "2, 4, 8, 16, 32, 64, 128"],
        ["K", "10"],
    ]
    return headers, rows


def fig14_knn_dims(quick: bool | None = None, jobs: int | None = None) -> Rows:
    """Speed-up vs Vitis over feature dimension (N=4M, K=10)."""
    quick = is_quick() if quick is None else quick
    dims = (2, 16, 128) if quick else (2, 4, 8, 16, 32, 64, 128)
    headers = ("D",) + FLOWS[1:]
    specs = [
        SweepSpec(run_knn, (flow,), {"n": 4_000_000, "d": d},
                  key=f"knn/{flow}/n4M/d{d}")
        for d in dims
        for flow in FLOWS
    ]
    results = iter(run_sweep(specs, jobs=jobs))
    rows = []
    for d in dims:
        base = next(results)
        rows.append(
            [d]
            + [
                round(base.latency_s / next(results).latency_s, 2)
                for _ in FLOWS[1:]
            ]
        )
    return headers, rows


def fig15_knn_sizes(quick: bool | None = None, jobs: int | None = None) -> Rows:
    """Speed-up vs Vitis over dataset size (D=2, K=10)."""
    quick = is_quick() if quick is None else quick
    sizes = (1_000_000, 8_000_000) if quick else (
        1_000_000, 2_000_000, 3_000_000, 4_000_000, 8_000_000
    )
    headers = ("N",) + FLOWS[1:]
    specs = [
        SweepSpec(run_knn, (flow,), {"n": n, "d": 2},
                  key=f"knn/{flow}/n{n // 1_000_000}M/d2")
        for n in sizes
        for flow in FLOWS
    ]
    results = iter(run_sweep(specs, jobs=jobs))
    rows = []
    for n in sizes:
        base = next(results)
        rows.append(
            [f"{n // 1_000_000}M"]
            + [
                round(base.latency_s / next(results).latency_s, 2)
                for _ in FLOWS[1:]
            ]
        )
    return headers, rows


def fig16_knn_resources() -> Rows:
    return _resource_figure(
        lambda flow: build_knn(knn_config_for_flow(flow, n=4_000_000, d=16))
    )


# ---------------------------------------------------------------------------
# Tables 7-8 / Figure 17: CNN
# ---------------------------------------------------------------------------


def table7_cnn_volumes() -> Rows:
    """Inter-FPGA transfer volume per grid size (fixed input)."""
    headers = ("Grid Size", "Volume (MB)")
    rows = []
    for flow, cols in GRID_FOR_FLOW.items():
        config = cnn_config_for_flow(flow)
        volume_mb = config.row_stream_tokens() * config.rows * 4.0 / 1e6
        rows.append([config.grid_name, round(volume_mb, 2)])
    return headers, rows


def table8_cnn_resources() -> Rows:
    """Resource utilization of each grid size against one U55C."""
    headers = ("Grid", "LUT%", "FF%", "BRAM%", "DSP%", "URAM%")
    rows = []
    for flow in FLOWS:
        config = cnn_config_for_flow(flow)
        graph = build_cnn(config)
        report = synthesize(graph)
        util = report.utilization_against(ALVEO_U55C.resources)
        rows.append(
            [config.grid_name] + [round(util[k] * 100, 1) for k in RESOURCE_KINDS]
        )
    return headers, rows


def fig17_cnn_latency() -> Rows:
    headers = ("Flow", "Grid", "Latency (ms)", "Fmax (MHz)", "Speed-up vs F1-V")
    rows = []
    base = None
    for flow in FLOWS:
        run = run_cnn(flow)
        if base is None:
            base = run
        rows.append(
            [
                flow,
                cnn_config_for_flow(flow).grid_name,
                round(run.latency_ms, 3),
                round(run.frequency_mhz),
                round(base.latency_s / run.latency_s, 2),
            ]
        )
    return headers, rows


# ---------------------------------------------------------------------------
# Tables 9-10 / Figure 8: network substrate
# ---------------------------------------------------------------------------


def table9_bandwidth_hierarchy() -> Rows:
    headers = ("Transfer", "Bandwidth")
    rows = [[tier.name, tier.bandwidth_label] for tier in BANDWIDTH_HIERARCHY]
    return headers, rows


def table10_protocols() -> Rows:
    headers = ("Project", "Orchestration", "Overhead (%)", "Throughput (Gbps)")
    rows = [
        [
            p.name,
            p.orchestration.value,
            "-" if p.resource_overhead_percent is None else p.resource_overhead_percent,
            p.throughput_gbps,
        ]
        for p in ALL_PROTOCOLS
    ]
    return headers, rows


def fig8_alveolink_throughput() -> Rows:
    """Achieved throughput vs transfer size (the Figure 8 ramp)."""
    headers = ("Transfer size", "Throughput (Gbps)")
    rows = []
    for size in (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9):
        label = f"{size:.0e}B"
        rows.append([label, round(ALVEOLINK.throughput_gbps(size), 2)])
    return headers, rows


# ---------------------------------------------------------------------------
# Section 5.6: overheads
# ---------------------------------------------------------------------------


def sec56_floorplan_overhead(quick: bool | None = None) -> Rows:
    """L1/L2 floorplanner runtimes for the smallest and largest designs."""
    quick = is_quick() if quick is None else quick
    headers = ("Design", "Modules", "L1 (s)", "L2 (s)")
    rows = []
    stencil_iters = (64,) if quick else (64, 128, 256)
    for iters in stencil_iters:
        run = run_stencil(iters, "F2", rows=4096, cols=4096)
        rows.append(
            [
                f"Stencil i{iters}",
                run.design.source_graph.num_tasks,
                round(run.design.inter_floorplan_seconds, 2),
                round(run.design.intra_floorplan_seconds, 2),
            ]
        )
    cnn_flows = ("F1-V", "F2") if quick else FLOWS
    for flow in cnn_flows:
        run = run_cnn(flow)
        rows.append(
            [
                f"CNN {cnn_config_for_flow(flow).grid_name}",
                run.design.source_graph.num_tasks,
                round(run.design.inter_floorplan_seconds, 2),
                round(run.design.intra_floorplan_seconds, 2),
            ]
        )
    return headers, rows


def sec56_network_overhead() -> Rows:
    """AlveoLink per-port resource overhead on the U55C."""
    from ..network.alveolink import port_overhead

    headers = ("Resource", "Overhead per port (%)")
    overhead = port_overhead(ALVEO_U55C)
    rows = [
        [kind.upper(), round(overhead[kind] / ALVEO_U55C.resources[kind] * 100, 2)
         if ALVEO_U55C.resources[kind] else 0.0]
        for kind in RESOURCE_KINDS
    ]
    return headers, rows


# ---------------------------------------------------------------------------
# Section 5.7: multi-node scaling
# ---------------------------------------------------------------------------


def sec57_multinode() -> Rows:
    """8-FPGA (2 x 4-ring) runs: stencil 512-iter and PageRank cit-Patents."""
    headers = ("Benchmark", "Config", "Latency (s)", "vs F1-V")
    rows = []

    base = run_stencil(512, "F1-V")
    config = stencil_config_for_flow(512, "F8")
    run8 = run_flow(
        build_stencil(config), "stencil", "F8", repeats=config.host_repeats
    )
    rows.append(
        [
            "Stencil",
            "512 iters, 120 PEs, 8 FPGAs",
            round(run8.latency_s, 3),
            f"{base.latency_s / run8.latency_s:.2f}x",
        ]
    )

    pr_base = run_pagerank("cit-Patents", "F1-V")
    pr8 = run_pagerank("cit-Patents", "F8")
    rows.append(
        [
            "PageRank",
            "cit-Patents, 32 PEs, 8 FPGAs",
            round(pr8.latency_s, 3),
            f"{pr_base.latency_s / pr8.latency_s:.2f}x",
        ]
    )
    # The paper's reference point: the 8-FPGA PageRank should stay slower
    # than the single-node F2 design because of the 10 Gbps host link.
    pr2 = run_pagerank("cit-Patents", "F2")
    rows.append(
        [
            "PageRank",
            "cit-Patents, 8 PEs, 2 FPGAs (1 node)",
            round(pr2.latency_s, 3),
            f"{pr_base.latency_s / pr2.latency_s:.2f}x",
        ]
    )
    return headers, rows


# ---------------------------------------------------------------------------
# Frequency summary (Sections 5.2-5.5)
# ---------------------------------------------------------------------------


def frequency_table() -> Rows:
    """Fmax per application per flow — the paper's 11-116% improvements."""
    headers = ("Benchmark", "F1-V", "F1-T", "TAPA-CS (F4)", "Gain vs Vitis")
    rows = []
    cases = [
        ("Stencil", lambda flow: run_stencil(64, flow)),
        ("PageRank", lambda flow: run_pagerank("cit-Patents", flow)),
        ("KNN", lambda flow: run_knn(flow, n=4_000_000, d=16)),
        ("CNN", run_cnn),
    ]
    for name, runner in cases:
        vitis = runner("F1-V").frequency_mhz
        tapa = runner("F1-T").frequency_mhz
        tapacs = runner("F4").frequency_mhz
        rows.append(
            [
                name,
                round(vitis),
                round(tapa),
                round(tapacs),
                f"{(tapacs / vitis - 1) * 100:.0f}%",
            ]
        )
    return headers, rows


# ---------------------------------------------------------------------------
# Harness smoke target
# ---------------------------------------------------------------------------


def sweep_smoke(quick: bool | None = None, jobs: int | None = None) -> Rows:
    """A deliberately tiny sweep that exercises the parallel executor.

    ``python -m repro bench sweep_smoke --quick --jobs 2`` compiles and
    simulates six small stencil configurations through the process pool
    and the content-addressed cache — the CI-sized proof that the
    ``--jobs`` path works end to end.
    """
    quick = is_quick() if quick is None else quick
    flows = ("F1-V", "F1-T") if quick else ("F1-V", "F1-T", "F2")
    iter_list = (16, 32)
    headers = ("Config", "Latency (ms)", "Fmax (MHz)")
    specs = [
        SweepSpec(run_stencil, (iters, flow), {"rows": 512, "cols": 512},
                  key=f"stencil/{flow}/i{iters}/512x512")
        for flow in flows
        for iters in iter_list
    ]
    results = run_sweep(specs, jobs=jobs)
    # A quarantined point (crashed/timed out every retry) comes back as
    # None; render it as such rather than losing the whole table.
    rows = [
        [spec.label(), "quarantined", "-"]
        if run is None
        else [run.label, round(run.latency_ms, 3), round(run.frequency_mhz)]
        for spec, run in zip(specs, results)
    ]
    return headers, rows


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------


def _partitioner_workload():
    """Two wide-bus clusters joined by thin links, each too big for one
    device: the structure where cut quality separates the methods (a
    plain chain has a trivial min-cut that every method finds)."""
    from ..graph.builder import GraphBuilder

    b = GraphBuilder("clustered")
    for group in range(2):
        names = [f"c{group}_{i}" for i in range(8)]
        for name in names:
            b.task(name, hints={"lut": 95_000})
        for i, a in enumerate(names):
            for bname in names[i + 1 : i + 3]:
                b.stream(a, bname, width_bits=512, tokens=1e5)
    for i in range(8):
        b.stream(f"c0_{i}", f"c1_{i}", width_bits=32, tokens=1e3)
    graph = b.build()
    synthesize(graph)
    return graph


def ablation_partitioner() -> Rows:
    """Exact ILP vs recursive bisection vs greedy on the inter-FPGA cut."""
    headers = ("Method", "Cut width (bits)", "Comm cost", "Solve (s)")
    cluster = paper_testbed(2)
    rows = []
    for method in ("ilp", "bisect", "greedy"):
        plan = floorplan_inter(
            _partitioner_workload(),
            cluster,
            InterFloorplanConfig(method=method, time_limit=30.0),
        )
        cut_bits = sum(c.width_bits for c in plan.cut_channels)
        rows.append([method, cut_bits, round(plan.comm_cost, 1),
                     round(plan.solve_seconds, 2)])
    return headers, rows


def ablation_pipelining() -> Rows:
    """Interconnect pipelining on/off: Fmax and latency effect."""
    headers = ("Pipelining", "Fmax (MHz)", "Latency (ms)")
    config = stencil_config_for_flow(64, "F2")
    rows = []
    for enabled in (True, False):
        compiler_config = CompilerConfig(
            enable_pipelining=enabled, enable_balancing=enabled
        )
        design = compile_design(
            build_stencil(config), paper_testbed(2), compiler_config
        )
        result = simulate(design)
        rows.append(
            [
                "on" if enabled else "off",
                round(design.frequency_mhz),
                round(result.latency_ms * config.host_repeats, 2),
            ]
        )
    return headers, rows


def _binding_workload():
    """A device-filling mix of wide and narrow HBM ports (more ports than
    channels): the regime where naive in-order binding pairs wide ports
    with each other while the explorer pairs wide with narrow."""
    from ..graph.builder import GraphBuilder
    from ..graph.task import TaskWork

    b = GraphBuilder("binding_mix")
    b.task("hub", hints={"lut": 4_000})
    names = []
    for i in range(16):
        name = f"wide_{i}"
        b.task(name, hints={"lut": 6_000},
               work=TaskWork(compute_cycles=1e4, hbm_bytes_read=64e6),
               hbm_read=(f"w{i}", 512, 64e6))
        names.append(name)
    for i in range(24):
        name = f"narrow_{i}"
        b.task(name, hints={"lut": 3_000},
               work=TaskWork(compute_cycles=1e4, hbm_bytes_read=4e6),
               hbm_read=(f"n{i}", 64, 4e6))
        names.append(name)
    for name in names:
        b.stream("hub", name, width_bits=32, tokens=16)
    graph = b.build()
    return graph


def ablation_hbm_binding() -> Rows:
    """HBM binding exploration on/off (40 mixed ports on 2 x 32 channels)."""
    headers = ("Binding", "Fmax (MHz)", "Latency (ms)", "Oversub (Gbps)")
    rows = []
    for enabled in (True, False):
        compiler_config = CompilerConfig(enable_hbm_exploration=enabled)
        design = compile_design(
            _binding_workload(), paper_testbed(2), compiler_config
        )
        result = simulate(design)
        oversub = sum(
            b.oversubscription_gbps for b in design.hbm_bindings.values()
        )
        rows.append(
            [
                "explored" if enabled else "naive",
                round(design.frequency_mhz),
                round(result.latency_ms, 3),
                round(oversub, 1),
            ]
        )
    return headers, rows


def ablation_topology() -> Rows:
    """Topology-aware vs uniform distance in the inter-FPGA ILP.

    Both assignments are evaluated under the REAL topology metric, so the
    rows are directly comparable: the aware run optimizes what it is
    scored on; the unaware run can land cut channels on distant device
    pairs and pay for it.
    """
    from ..cluster.cluster import make_cluster
    from ..cluster.topology import make_topology

    headers = ("Topology", "Aware", "True comm cost", "Cut volume (MB)")
    config = stencil_config_for_flow(512, "F4")
    rows = []
    for topo_name in ("chain", "ring", "star"):
        cluster = make_cluster(4, topology=make_topology(topo_name, 4))
        for aware in (True, False):
            graph = build_stencil(config)
            synthesize(graph)
            plan = floorplan_inter(
                graph,
                cluster,
                InterFloorplanConfig(topology_aware=aware, time_limit=20.0),
            )
            true_cost = sum(
                chan.width_bits
                * cluster.comm_cost(
                    plan.assignment[chan.src], plan.assignment[chan.dst]
                )
                for chan in plan.cut_channels
            )
            rows.append(
                [
                    topo_name,
                    "yes" if aware else "no",
                    round(true_cost, 1),
                    round(plan.cut_volume_bytes / 1e6, 2),
                ]
            )
    return headers, rows


def ablation_solver_backends() -> Rows:
    """HiGHS vs pure-Python branch-and-bound on one bipartition instance."""
    from ..core.bipartition import BipartitionSpec, bipartition

    headers = ("Backend", "Objective", "Solve (s)")
    config = stencil_config_for_flow(256, "F2")
    graph = build_stencil(config)
    synthesize(graph)
    half = ALVEO_U55C.resources
    rows = []
    for backend in ("scipy", "branch-bound"):
        start = time.perf_counter()
        result = bipartition(
            BipartitionSpec(
                graph=graph,
                capacity_left=half,
                capacity_right=half,
                threshold=0.7,
                backend=backend,
                time_limit=60.0,
            )
        )
        rows.append(
            [backend, round(result.objective, 1), round(time.perf_counter() - start, 2)]
        )
    return headers, rows


# ---------------------------------------------------------------------------
# Fault injection: slowdown vs loss rate, degraded-cluster re-planning
# ---------------------------------------------------------------------------


def _fault_app_graph(app: str, flow: str):
    """Default-size graph for one app under one flow label (picklable path)."""
    if app == "stencil":
        return build_stencil(stencil_config_for_flow(64, flow))
    if app == "pagerank":
        config, _ = pagerank_config_for_flow(
            graphgen.get_network("cit-Patents"), flow
        )
        return build_pagerank(config)
    if app == "knn":
        return build_knn(knn_config_for_flow(flow, n=4_000_000, d=16))
    if app == "cnn":
        return build_cnn(cnn_config_for_flow(flow))
    raise ValueError(f"unknown fault-sweep app {app!r}")


def run_faulted(
    app: str,
    flow: str = "F4",
    loss_rate: float = 0.0,
    kill_device: int | None = None,
) -> AppRun | None:
    """One app run under an injected fault scenario (module-level so the
    sweep executor can pickle it).

    Returns ``None`` when the surviving cluster cannot host the design —
    the sweep renders that as ``infeasible`` instead of crashing, which
    is exactly the graceful-degradation contract the compiler promises.
    """
    from ..errors import DegradedClusterError
    from ..faults import FaultScenario

    scenario = (
        FaultScenario.lossy(loss_rate) if loss_rate > 0.0
        else FaultScenario.healthy()
    )
    if kill_device is not None:
        scenario = scenario.kill_device(kill_device)
    label = f"{app}/{flow}/loss{loss_rate:g}" + (
        f"/kill{kill_device}" if kill_device is not None else ""
    )
    try:
        return run_flow(
            _fault_app_graph(app, flow),
            app,
            flow,
            label=label,
            faults=None if scenario.is_healthy else scenario,
        )
    except DegradedClusterError:
        return None


def fault_sweep(quick: bool | None = None, jobs: int | None = None) -> Rows:
    """Slowdown-vs-loss-rate curves per app, plus a device-kill column.

    Every cell is normalized against the healthy run of the same app, so
    the table reads directly as the robustness figure: slowdown must be
    monotone in the loss rate, and the kill column shows whether the
    design re-plans on three surviving devices or reports infeasibility.
    """
    quick = is_quick() if quick is None else quick
    apps = ("stencil", "pagerank") if quick else ("stencil", "pagerank", "knn", "cnn")
    losses = (1e-3, 1e-2) if quick else (1e-4, 1e-3, 1e-2, 1e-1)
    flow = "F4"

    headers = (
        ("App", "Healthy (ms)")
        + tuple(f"x @ loss {p:g}" for p in losses)
        + ("x @ kill dev0",)
    )
    specs = []
    for app in apps:
        specs.append(
            SweepSpec(run_faulted, (app, flow), key=f"{app}/{flow}/healthy")
        )
        for p in losses:
            specs.append(
                SweepSpec(run_faulted, (app, flow), {"loss_rate": p},
                          key=f"{app}/{flow}/loss{p:g}")
            )
        specs.append(
            SweepSpec(run_faulted, (app, flow), {"kill_device": 0},
                      key=f"{app}/{flow}/kill0")
        )
    results = iter(run_sweep(specs, jobs=jobs))
    rows = []
    for app in apps:
        base = next(results)
        if base is None:
            # The healthy run itself was quarantined: consume the app's
            # remaining cells and keep the row (degraded, not fatal).
            for _ in losses:
                next(results)
            next(results)
            rows.append([app, "quarantined"] + ["-"] * (len(losses) + 1))
            continue
        row = [app, round(base.latency_ms, 3)]
        for _ in losses:
            run = next(results)
            row.append(
                "-" if run is None
                else round(run.latency_s / base.latency_s, 4)
            )
        killed = next(results)
        row.append(
            "infeasible" if killed is None
            else round(killed.latency_s / base.latency_s, 4)
        )
        rows.append(row)
    return headers, rows


def ablation_bulk_transfers() -> Rows:
    """Bulk-DMA vs fully streaming NIC model on the temporal stencil."""
    headers = ("Network model", "Latency (ms)")
    config = stencil_config_for_flow(512, "F4")
    design = app_common.compile_flow(build_stencil(config), "F4")
    rows = []
    for bulk in (True, False):
        result = simulate(design, SimulationConfig(bulk_network_transfers=bulk))
        rows.append(
            [
                "bulk DMA (testbed)" if bulk else "streaming NIC",
                round(result.latency_ms * config.host_repeats, 2),
            ]
        )
    return headers, rows
