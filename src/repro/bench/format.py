"""Plain-text table rendering for the experiment harness.

Every bench prints the rows it regenerates in a monospace table so the
output can be eyeballed against the paper's tables and figures.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]

    def line(parts: Sequence[str]) -> str:
        return " | ".join(p.ljust(w) for p, w in zip(parts, widths))

    out = []
    if title:
        out.append(title)
    out.append(line([str(h) for h in headers]))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(r) for r in cells)
    return "\n".join(out)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> None:
    print()
    print(render_table(headers, rows, title=title))
