"""Machine-readable ``BENCH_<experiment>.json`` records.

One emitter shared by the pytest-benchmark harness
(``benchmarks/conftest.py``) and ``python -m repro bench``, so both
paths produce the same document.  A record carries the produced table,
wall time, cache activity, the run journal id (when journaling), and —
new with the crash-safe toolchain — a ``partial`` flag plus the
quarantined-point reports: an interrupted or degraded run leaves an
honest artifact instead of nothing.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Sequence


def bench_json_dir(explicit: str | None = None) -> Path | None:
    """Where BENCH json records go, or None when emission is off.

    Priority: explicit argument > ``REPRO_BENCH_JSON_DIR``.  The pytest
    harness always emits (defaulting to the working directory); the CLI
    emits only when a destination is configured.
    """
    if explicit:
        return Path(explicit)
    env = os.environ.get("REPRO_BENCH_JSON_DIR")
    return Path(env) if env else None


def emit_bench_record(
    experiment: str,
    result: Any = None,
    wall_seconds: float = 0.0,
    cache_before: dict | None = None,
    cache_after: dict | None = None,
    *,
    partial: bool = False,
    failures: Sequence[Any] = (),
    run_id: str | None = None,
    jobs: str | None = None,
    error: str | None = None,
    out_dir: str | os.PathLike | None = None,
) -> Path:
    """Write ``BENCH_<experiment>.json`` and return its path.

    ``failures`` accepts :class:`~repro.perf.sweep.SweepFailure` records
    (or plain dicts); ``partial=True`` marks a run cut short by
    SIGINT/SIGTERM — its rows cover only the completed points.
    """
    record: dict[str, Any] = {
        "experiment": experiment,
        "wall_seconds": wall_seconds,
        "jobs": jobs or os.environ.get("REPRO_BENCH_JOBS") or "1",
        "quick": bool(os.environ.get("REPRO_QUICK")),
        "partial": partial,
    }
    if run_id:
        record["run_id"] = run_id
    if error:
        record["error"] = error
    if cache_before is not None and cache_after is not None:
        record["cache"] = {
            key: cache_after[key] - cache_before[key]
            for key in cache_after
            if isinstance(cache_after[key], (int, float))
        }
    if failures:
        record["failed"] = [
            f.as_dict() if hasattr(f, "as_dict") else dict(f) for f in failures
        ]
    if result is not None:
        try:
            headers, rows = result
            record["headers"] = list(headers)
            record["rows"] = [list(row) for row in rows]
        except (TypeError, ValueError):
            record["result"] = repr(result)
    directory = Path(out_dir) if out_dir is not None else Path(".")
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{experiment}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path
