"""Experiment harness: one function per paper table/figure, plus ablations."""

from .format import print_table, render_table
from . import experiments

__all__ = ["experiments", "print_table", "render_table"]
