"""Crash-safe parallel sweep executor for independent experiment runs.

Every latency table/figure sweeps independent (flow x parameter)
combinations: each run compiles and simulates its own design, nothing is
shared except the content-addressed cache.  ``run_sweep`` fans those
runs across a :class:`~concurrent.futures.ProcessPoolExecutor` and
returns the results in submission order, so a table built from a sweep
is identical to the serial one — the rows are pure functions of their
inputs, only the wall clock changes.

On top of the PR-1 executor this module adds the supervision layer a
multi-hour campaign needs:

* **journaled resume** — with an active :class:`~repro.perf.journal.RunJournal`
  every completed point is fsync'd to disk before the sweep moves on,
  and already-journaled points are merged instead of recomputed;
* **worker supervision** — per-job wall-clock timeouts, bounded retry
  with exponential backoff + jitter, and quarantine: a point that fails
  ``max_attempts`` times lands in the outcome's ``failed`` list (its
  result is ``None``) instead of aborting the sweep;
* **pool respawn** — a worker that dies (``os._exit``, OOM-kill,
  segfault) breaks a ``ProcessPoolExecutor`` permanently; the supervisor
  respawns the pool and re-runs the in-flight jobs rather than
  surfacing ``BrokenProcessPool``;
* **clean interruption** — SIGINT/SIGTERM mid-sweep kills the pool,
  leaves the journal flushed, and raises
  :class:`~repro.errors.SweepInterrupted` carrying the partial results
  so callers can emit a ``"partial": true`` record and exit 130.

The job count resolves, in priority order: the explicit ``jobs``
argument, the ``REPRO_BENCH_JOBS`` environment variable, then 1
(serial).  ``--jobs 1`` is a genuine serial fallback: no pool, no
pickling, no fork — and therefore no timeout enforcement or
crash survival (a crashing point takes the process with it); retries,
quarantine, and journaling still apply.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import SweepInterrupted
from .cache import cache_stats, merge_stats
from .journal import RunJournal, current_journal, spec_key
from .supervise import BackoffPolicy


@dataclass(slots=True)
class SweepSpec:
    """One independent run of a sweep: a top-level callable plus inputs.

    ``fn`` must be picklable by reference (a module-level function) so
    the process pool can ship it to workers; its return value crosses
    back the same way.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: Optional caller label; used in journal records and failure
    #: reports (falls back to ``module.qualname(args)``).
    key: Any = None

    def label(self) -> str:
        if self.key is not None:
            return str(self.key)
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        parts = [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in sorted(self.kwargs.items())]
        return f"{name}({', '.join(parts)})"

    def content_key(self) -> str:
        return spec_key(self.fn, self.args, self.kwargs)


@dataclass(slots=True)
class SweepFailure:
    """One quarantined sweep point: what failed, how, how many times."""

    index: int
    key: str
    label: str
    error: str
    attempts: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "key": self.key,
            "label": self.label,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass(slots=True)
class SweepOutcome:
    """Everything a supervised sweep produced, success or not.

    ``results`` is in submission order; quarantined points hold ``None``
    and appear in ``failed``.  The counters tell the story a long
    campaign's operator wants: how much was resumed from the journal,
    how many retries and pool respawns the run survived.
    """

    results: list[Any] = field(default_factory=list)
    failed: list[SweepFailure] = field(default_factory=list)
    completed: int = 0
    resumed: int = 0
    retried: int = 0
    pool_respawns: int = 0
    partial: bool = False

    @property
    def ok(self) -> bool:
        return not self.failed and not self.partial


def resolve_jobs(jobs: int | None = None) -> int:
    """The effective worker count: argument > REPRO_BENCH_JOBS > 1."""
    if jobs is None:
        raw = os.environ.get("REPRO_BENCH_JOBS", "")
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    return max(1, jobs)


def _env_float(name: str, default: float | None) -> float | None:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    try:
        return int(raw) if raw else default
    except ValueError:
        return default


def _worker_init() -> None:
    """Reset signal dispositions in sweep workers.

    Workers must die silently on the supervisor's ``terminate()``
    (SIGTERM) rather than run an inherited handler, and must ignore
    Ctrl-C so the parent — not 2N broken workers — owns the one clean
    interrupt path.
    """
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def _run_spec(spec: SweepSpec) -> tuple[Any, dict[str, Any]]:
    """Worker body: run one spec and report the cache-stats delta."""
    before = cache_stats().as_dict()
    result = spec.fn(*spec.args, **spec.kwargs)
    after = cache_stats().as_dict()
    delta = {k: after[k] - before[k] for k in after}
    return result, delta


#: Quarantined points from every sweep since the last drain — the CLI
#: and bench harness read this to report failures across an experiment
#: that runs several sweeps.
_FAILURE_LOG: list[SweepFailure] = []


def take_failure_report() -> list[SweepFailure]:
    """Drain the accumulated quarantined-point reports."""
    global _FAILURE_LOG
    drained, _FAILURE_LOG = _FAILURE_LOG, []
    return drained


@dataclass(slots=True)
class _Job:
    """Supervisor-internal bookkeeping for one in-flight sweep point."""

    index: int
    spec: SweepSpec
    key: str
    attempts: int = 0
    eligible_at: float = 0.0
    started_at: float = 0.0
    last_error: str = ""
    #: True after this job was in flight during a pool crash: suspects
    #: re-run one at a time so the next crash names the guilty job.
    suspect: bool = False


class WorkerSupervisor:
    """Runs jobs on a respawnable process pool with timeouts and retries.

    The supervisor never lets a single bad point abort the batch: a job
    that raises is retried with exponential backoff + jitter; a job that
    exceeds ``timeout_s`` has the whole pool killed (there is no way to
    kill one ``ProcessPoolExecutor`` worker portably) and innocent
    in-flight jobs re-run without an attempt penalty; a worker crash
    (``BrokenProcessPool``) respawns the pool and penalizes every
    in-flight job one attempt, since the crasher is unidentifiable.
    After ``max_attempts`` failures a job is quarantined.
    """

    #: Poll interval of the supervision loop (also the granularity of
    #: timeout detection), kept small relative to any real compile.
    _POLL_S = 0.05

    def __init__(
        self,
        workers: int,
        timeout_s: float | None = None,
        max_attempts: int = 3,
        backoff_base_s: float = 0.1,
        backoff_cap_s: float = 5.0,
    ):
        self.workers = max(1, workers)
        self.timeout_s = timeout_s
        self.max_attempts = max(1, max_attempts)
        self.backoff = BackoffPolicy(
            base_s=max(0.0, backoff_base_s), cap_s=backoff_cap_s
        )
        self.respawns = 0
        self.retries = 0
        self._pool: ProcessPoolExecutor | None = None

    # -- pool lifecycle ------------------------------------------------------

    def _pool_or_spawn(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, initializer=_worker_init
            )
        return self._pool

    def _kill_pool(self) -> None:
        """Hard-stop the pool: terminate workers, drop the executor."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    # -- retry policy --------------------------------------------------------

    def _retry_or_quarantine(
        self,
        job: _Job,
        error: str,
        pending: deque,
        failures: list[SweepFailure],
        penalty: int = 1,
    ) -> None:
        job.attempts += penalty
        job.last_error = error
        if job.attempts >= self.max_attempts:
            failures.append(
                SweepFailure(
                    index=job.index,
                    key=job.key,
                    label=job.spec.label(),
                    error=error,
                    attempts=job.attempts,
                )
            )
            return
        self.retries += 1
        job.eligible_at = time.monotonic() + self.backoff.delay(job.attempts)
        pending.append(job)

    # -- main loop -----------------------------------------------------------

    def run(
        self,
        items: Sequence[tuple[int, SweepSpec, str]],
        on_success: Callable[[_Job, Any], None],
    ) -> list[SweepFailure]:
        """Run every (index, spec, key) item; returns quarantined points.

        Successes are delivered through ``on_success`` as they complete
        (that is where the caller journals and merges stats), so a crash
        of the *supervisor's own process* still leaves every delivered
        point journaled.
        """
        pending: deque[_Job] = deque(
            _Job(index=i, spec=spec, key=key) for i, spec, key in items
        )
        running: dict[Any, _Job] = {}
        failures: list[SweepFailure] = []
        try:
            while pending or running:
                now = time.monotonic()
                self._submit_eligible(pending, running, now)
                if not running:
                    # Everything is backing off: sleep to the earliest.
                    wake = min(job.eligible_at for job in pending)
                    time.sleep(max(0.0, min(wake - now, self.backoff.cap_s)))
                    continue
                done, _ = wait(
                    list(running), timeout=self._POLL_S,
                    return_when=FIRST_COMPLETED,
                )
                crashed = False
                for future in done:
                    job = running.pop(future)
                    try:
                        result, stats_delta = future.result()
                    except BrokenProcessPool:
                        crashed = True
                        job.suspect = True
                        self._retry_or_quarantine(
                            job, "worker process died (pool crashed)",
                            pending, failures,
                        )
                    except Exception as exc:
                        self._retry_or_quarantine(
                            job, f"{type(exc).__name__}: {exc}",
                            pending, failures,
                        )
                    else:
                        merge_stats(stats_delta)
                        on_success(job, result)
                if crashed:
                    self._handle_crash(running, pending, failures)
                elif self.timeout_s is not None:
                    self._handle_timeouts(running, pending, failures)
        except (KeyboardInterrupt, SystemExit):
            self._kill_pool()
            raise
        finally:
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        return failures

    def _submit_eligible(
        self, pending: deque, running: dict, now: float
    ) -> None:
        # Never queue more than `workers` jobs inside the executor, so
        # `started_at` measures actual run time, not queue wait.
        #
        # Crash triage: while any suspect exists, exactly one suspect
        # runs and nothing else — a crash then charges only the job
        # that was provably running, so an innocent point can never be
        # quarantined by a neighbour's repeated crashes.
        triage = any(j.suspect for j in pending) or any(
            j.suspect for j in running.values()
        )
        suspect_in_flight = any(j.suspect for j in running.values())
        eligible = deque()
        while pending:
            job = pending.popleft()
            allowed = job.eligible_at <= now and len(running) < self.workers
            if triage:
                allowed = allowed and job.suspect and not suspect_in_flight
            if allowed:
                pool = self._pool_or_spawn()
                try:
                    future = pool.submit(_run_spec, job.spec)
                except BrokenProcessPool:
                    # Pool broke between batches: respawn and retry.
                    self.respawns += 1
                    self._kill_pool()
                    eligible.append(job)
                    continue
                job.started_at = time.monotonic()
                running[future] = job
                suspect_in_flight = suspect_in_flight or job.suspect
            else:
                eligible.append(job)
        pending.extend(eligible)

    def _handle_crash(
        self, running: dict, pending: deque, failures: list[SweepFailure]
    ) -> None:
        """A worker died; every in-flight future is unrecoverable."""
        self.respawns += 1
        self._kill_pool()
        for future, job in list(running.items()):
            job.suspect = True
            self._retry_or_quarantine(
                job, "worker process died (pool crashed)", pending, failures
            )
        running.clear()

    def _handle_timeouts(
        self, running: dict, pending: deque, failures: list[SweepFailure]
    ) -> None:
        now = time.monotonic()
        overdue = {
            future: job
            for future, job in running.items()
            if now - job.started_at > self.timeout_s
        }
        if not overdue:
            return
        # A hung worker cannot be killed individually: take the pool
        # down, charge the overdue jobs, and re-run the innocent ones
        # with no attempt penalty.
        self.respawns += 1
        self._kill_pool()
        for future, job in list(running.items()):
            del running[future]
            if future in overdue:
                self._retry_or_quarantine(
                    job,
                    f"timed out after {self.timeout_s:g}s",
                    pending,
                    failures,
                )
            else:
                job.eligible_at = 0.0
                pending.append(job)


# ---------------------------------------------------------------------------
# run_sweep: the public entry point
# ---------------------------------------------------------------------------


def run_sweep_outcome(
    specs: Sequence[SweepSpec],
    jobs: int | None = None,
    *,
    journal: RunJournal | None = None,
    timeout_s: float | None = None,
    retries: int | None = None,
    backoff_base_s: float | None = None,
) -> SweepOutcome:
    """Run every spec under supervision and return the full outcome.

    Args:
        journal: run journal to resume from / record into; defaults to
            the process-wide active journal (set by ``repro bench``).
        timeout_s: per-job wall-clock budget (default
            ``REPRO_SWEEP_TIMEOUT_S``, unset means no timeout);
            enforced only on the parallel path.
        retries: re-runs allowed per point after its first failure
            (default ``REPRO_SWEEP_RETRIES`` or 2, i.e. 3 attempts).
        backoff_base_s: first-retry backoff (default
            ``REPRO_SWEEP_RETRY_BASE`` or 0.1s), doubling per attempt
            with +-25% jitter.

    SIGINT/SIGTERM during the sweep raise
    :class:`~repro.errors.SweepInterrupted` after the pool is torn down;
    every already-completed point is journaled, so ``--resume`` picks up
    exactly where the signal landed.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    journal = journal if journal is not None else current_journal()
    timeout_s = timeout_s if timeout_s is not None else _env_float(
        "REPRO_SWEEP_TIMEOUT_S", None
    )
    max_attempts = 1 + (
        retries if retries is not None else _env_int("REPRO_SWEEP_RETRIES", 2)
    )
    backoff = (
        backoff_base_s
        if backoff_base_s is not None
        else _env_float("REPRO_SWEEP_RETRY_BASE", 0.1)
    )

    outcome = SweepOutcome(results=[None] * len(specs))
    keys = [spec.content_key() for spec in specs]

    # Merge journaled points first: identical content keys identify
    # work already fsync'd to disk by an earlier (possibly killed) run.
    completed = journal.completed() if journal is not None else {}
    todo: list[tuple[int, SweepSpec, str]] = []
    for i, spec in enumerate(specs):
        if keys[i] in completed:
            outcome.results[i] = completed[keys[i]]
            outcome.resumed += 1
            outcome.completed += 1
        else:
            todo.append((i, spec, keys[i]))

    if not todo:
        return outcome

    def record_success(index: int, spec: SweepSpec, key: str, result: Any,
                       elapsed_s: float) -> None:
        outcome.results[index] = result
        outcome.completed += 1
        if journal is not None:
            journal.record_point(
                key, result, label=spec.label(), elapsed_s=elapsed_s
            )

    def record_failure(failure: SweepFailure) -> None:
        outcome.failed.append(failure)
        _FAILURE_LOG.append(failure)
        if journal is not None:
            journal.record_failure(
                failure.key, failure.error, label=failure.label
            )

    with _deliver_sigterm_as_interrupt():
        try:
            if jobs <= 1 or len(todo) <= 1:
                _run_serial(
                    todo, record_success, record_failure,
                    max_attempts=max_attempts, backoff_base_s=backoff,
                )
            else:
                supervisor = WorkerSupervisor(
                    workers=min(jobs, len(todo)),
                    timeout_s=timeout_s,
                    max_attempts=max_attempts,
                    backoff_base_s=backoff,
                )

                def on_success(job: _Job, result: Any) -> None:
                    record_success(
                        job.index, job.spec, job.key, result,
                        time.monotonic() - job.started_at,
                    )

                for failure in supervisor.run(todo, on_success):
                    record_failure(failure)
                outcome.retried += supervisor.retries
                outcome.pool_respawns += supervisor.respawns
        except KeyboardInterrupt:
            outcome.partial = True
            raise SweepInterrupted(
                f"sweep interrupted with {outcome.completed}/{len(specs)} "
                "points complete",
                completed=outcome.completed,
                total=len(specs),
                results=outcome.results,
                journal_path=journal.path if journal is not None else None,
            ) from None
    return outcome


def _run_serial(
    todo: list[tuple[int, SweepSpec, str]],
    record_success,
    record_failure,
    max_attempts: int,
    backoff_base_s: float,
) -> None:
    """In-process execution with the same retry/quarantine contract.

    No pool means no timeout enforcement and no crash survival — but a
    raising point is still retried with backoff and quarantined instead
    of aborting the batch, and every success is journaled immediately.
    """
    backoff = BackoffPolicy(base_s=max(0.0, backoff_base_s))
    for index, spec, key in todo:
        attempts = 0
        while True:
            attempts += 1
            start = time.monotonic()
            try:
                result = spec.fn(*spec.args, **spec.kwargs)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                if attempts >= max_attempts:
                    record_failure(
                        SweepFailure(
                            index=index,
                            key=key,
                            label=spec.label(),
                            error=f"{type(exc).__name__}: {exc}",
                            attempts=attempts,
                        )
                    )
                    break
                time.sleep(backoff.delay(attempts))
            else:
                record_success(
                    index, spec, key, result, time.monotonic() - start
                )
                break


def _raise_interrupt(signum, frame):
    raise KeyboardInterrupt


class _deliver_sigterm_as_interrupt:
    """Route SIGTERM through KeyboardInterrupt for the sweep's duration.

    A scheduler preempting the run sends SIGTERM; mapping it onto the
    same path as Ctrl-C means one flush-and-report shutdown flow for
    both.  No-op off the main thread (signal handlers cannot be
    installed there) and when a previous handler was already custom.
    """

    def __enter__(self):
        self._installed = False
        if threading.current_thread() is not threading.main_thread():
            return self
        try:
            self._previous = signal.getsignal(signal.SIGTERM)
            if self._previous in (signal.SIG_DFL, None):
                signal.signal(signal.SIGTERM, _raise_interrupt)
                self._installed = True
        except (ValueError, OSError):
            pass
        return self

    def __exit__(self, *exc_info):
        if self._installed:
            try:
                signal.signal(signal.SIGTERM, self._previous)
            except (ValueError, OSError):
                pass


def run_sweep(
    specs: Sequence[SweepSpec],
    jobs: int | None = None,
    *,
    journal: RunJournal | None = None,
    timeout_s: float | None = None,
    retries: int | None = None,
) -> list[Any]:
    """Run every spec and return their results in submission order.

    Quarantined points (those that failed every retry) return ``None``
    in their slot; the detailed report is available through
    :func:`run_sweep_outcome` or :func:`take_failure_report`.
    """
    return run_sweep_outcome(
        specs, jobs, journal=journal, timeout_s=timeout_s, retries=retries
    ).results
