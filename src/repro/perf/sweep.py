"""Parallel sweep executor for independent experiment runs.

Every latency table/figure sweeps independent (flow x parameter)
combinations: each run compiles and simulates its own design, nothing is
shared except the content-addressed cache.  ``run_sweep`` fans those
runs across a :class:`~concurrent.futures.ProcessPoolExecutor` and
returns the results in submission order, so a table built from a sweep
is identical to the serial one — the rows are pure functions of their
inputs, only the wall clock changes.

Worker processes write their compile/simulate artifacts to the shared
on-disk cache and return their hit/miss stats, which the parent merges,
so ``repro perf`` accounting stays truthful under ``--jobs N``.

The job count resolves, in priority order: the explicit ``jobs``
argument, the ``REPRO_BENCH_JOBS`` environment variable, then 1
(serial).  ``--jobs 1`` is a genuine serial fallback: no pool, no
pickling, no fork.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .cache import cache_stats, merge_stats


@dataclass(slots=True)
class SweepSpec:
    """One independent run of a sweep: a top-level callable plus inputs.

    ``fn`` must be picklable by reference (a module-level function) so
    the process pool can ship it to workers; its return value crosses
    back the same way.
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: Optional caller bookkeeping label (not used by the executor).
    key: Any = None


def resolve_jobs(jobs: int | None = None) -> int:
    """The effective worker count: argument > REPRO_BENCH_JOBS > 1."""
    if jobs is None:
        raw = os.environ.get("REPRO_BENCH_JOBS", "")
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    return max(1, jobs)


def _run_spec(spec: SweepSpec) -> tuple[Any, dict[str, Any]]:
    """Worker body: run one spec and report the cache-stats delta."""
    before = cache_stats().as_dict()
    result = spec.fn(*spec.args, **spec.kwargs)
    after = cache_stats().as_dict()
    delta = {k: after[k] - before[k] for k in after}
    return result, delta


def run_sweep(
    specs: Sequence[SweepSpec], jobs: int | None = None
) -> list[Any]:
    """Run every spec and return their results in submission order."""
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(specs) <= 1:
        return [spec.fn(*spec.args, **spec.kwargs) for spec in specs]
    workers = min(jobs, len(specs))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_spec, spec) for spec in specs]
        results = []
        for future in futures:
            result, stats_delta = future.result()
            merge_stats(stats_delta)
            results.append(result)
    return results
