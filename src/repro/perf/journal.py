"""Append-only run journals: crash-safe bookkeeping for long sweeps.

A multi-hour bench campaign must survive preemption: the journal records
one line per *completed* sweep point, flushed and fsync'd before the
sweep moves on, so a SIGKILL at any instant loses at most the point that
was in flight.  ``run_sweep`` consults the journal before executing and
skips every point it already holds, merging the stored results — a
resumed run therefore produces byte-identical output to an uninterrupted
one.

Format: JSON Lines (one record per line) under
``$REPRO_RUNS_DIR`` (default ``<cache-dir>/runs``), one file per run id.

* line 1 — ``{"kind": "header", "run_id", "experiment", "schema",
  "model", "created_unix"}``; ``model`` is the
  :func:`~repro.perf.fingerprint.model_constants_fingerprint` at write
  time, so a journal written against older model constants is never
  merged into a run against newer ones.
* point lines — ``{"kind": "point", "key", "label", "status",
  "payload", "sha256", "elapsed_s"}``; ``payload`` is the
  base64-encoded pickle of the point's result and ``sha256`` its
  checksum.  Failed (quarantined) points are recorded with
  ``status: "failed"`` and an ``error`` string instead of a payload —
  they are *not* skipped on resume, so a transient failure gets another
  chance on the next run.
* an optional ``{"kind": "end", "status": "complete"}`` trailer marks a
  run that finished; its absence marks a partial (killed) run.

Reading is maximally tolerant: a truncated final line (the crash case),
a corrupt middle line, or a payload whose checksum does not match are
all skipped, never raised.  Writing failures *are* raised
(:class:`~repro.errors.JournalError`) — silently losing journal records
would break the resume contract.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import re
import time
from dataclasses import dataclass
from typing import Any

from ..errors import JournalError
from .fingerprint import model_constants_fingerprint, to_jsonable

#: Bump when the journal line format changes incompatibly; mismatched
#: journals are listed but never merged.
JOURNAL_SCHEMA_VERSION = 1

_RUN_SUFFIX = ".jsonl"
_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def default_runs_dir() -> str:
    """The run-journal directory, env-overridable like the cache dir."""
    explicit = os.environ.get("REPRO_RUNS_DIR")
    if explicit:
        return explicit
    from .cache import default_cache_dir

    return os.path.join(default_cache_dir(), "runs")


def new_run_id(experiment: str = "run") -> str:
    """A fresh, human-sortable run id: ``<experiment>-<utc stamp>-<pid>``."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    slug = re.sub(r"[^A-Za-z0-9._-]", "_", experiment) or "run"
    return f"{slug}-{stamp}-{os.getpid()}"


def spec_key(fn: Any, args: tuple = (), kwargs: dict | None = None) -> str:
    """A stable content key identifying one sweep point.

    Covers the callable's identity plus its arguments; two runs of the
    same experiment produce the same keys, which is what makes resume
    work.  Arguments the canonical-JSON encoder cannot handle fall back
    to ``repr`` — stable for the value types experiments actually sweep.
    """
    try:
        payload = json.dumps(
            to_jsonable({"args": list(args), "kwargs": kwargs or {}}),
            sort_keys=True,
            separators=(",", ":"),
        )
    except TypeError:
        payload = repr((args, sorted((kwargs or {}).items())))
    identity = f"{getattr(fn, '__module__', '?')}.{getattr(fn, '__qualname__', repr(fn))}"
    digest = hashlib.sha256(f"{identity}|{payload}".encode()).hexdigest()
    return digest


@dataclass(slots=True)
class RunInfo:
    """Summary of one journaled run (what ``repro perf runs`` prints)."""

    run_id: str
    path: str
    experiment: str = ""
    created_unix: float = 0.0
    points_ok: int = 0
    points_failed: int = 0
    complete: bool = False
    #: False when the journal was written against different model
    #: constants (or journal schema) and would not be merged on resume.
    mergeable: bool = True


class RunJournal:
    """One run's append-only JSONL journal.

    Opening an existing path loads every valid record; appends go to the
    same file with a flush + fsync per record.  The in-memory view and
    the on-disk file never disagree by more than the record being
    written, which is exactly the crash-safety contract resume needs.
    """

    def __init__(self, path: str, run_id: str, experiment: str = ""):
        self.path = path
        self.run_id = run_id
        self.experiment = experiment
        self._completed: dict[str, tuple[Any, float]] = {}
        self._failed: dict[str, str] = {}
        self._labels: dict[str, str] = {}
        self._complete = False
        self._mergeable = True
        self._handle = None
        self._load()

    # -- construction --------------------------------------------------------

    @classmethod
    def open(
        cls, run_id: str, runs_dir: str | None = None, experiment: str = ""
    ) -> "RunJournal":
        """Open (creating if new) the journal for ``run_id``."""
        if not _RUN_ID_RE.match(run_id):
            raise JournalError(
                f"invalid run id {run_id!r} (letters, digits, '.', '_', '-')"
            )
        directory = runs_dir or default_runs_dir()
        path = os.path.join(directory, run_id + _RUN_SUFFIX)
        return cls(path, run_id, experiment=experiment)

    # -- reading -------------------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Truncated mid-write (the final line after a crash) or
                # scribbled on: skip, never raise.
                continue
            if not isinstance(record, dict):
                continue
            kind = record.get("kind")
            if kind == "header":
                self.experiment = record.get("experiment", self.experiment)
                if record.get("schema") != JOURNAL_SCHEMA_VERSION:
                    self._mergeable = False
                if record.get("model") != model_constants_fingerprint():
                    # Results computed under different model constants
                    # must not be merged into a current-model run.
                    self._mergeable = False
            elif kind == "point":
                self._load_point(record)
            elif kind == "end":
                self._complete = record.get("status") == "complete"

    def _load_point(self, record: dict) -> None:
        key = record.get("key")
        if not isinstance(key, str):
            return
        label = record.get("label", "")
        if record.get("status") == "failed":
            self._failed[key] = str(record.get("error", "unknown failure"))
            self._labels[key] = label
            return
        payload = record.get("payload")
        digest = record.get("sha256")
        if not isinstance(payload, str) or not isinstance(digest, str):
            return
        try:
            blob = base64.b64decode(payload.encode("ascii"), validate=True)
        except (ValueError, UnicodeEncodeError):
            return
        if hashlib.sha256(blob).hexdigest() != digest:
            return  # torn or corrupted record: treat as never written
        try:
            value = pickle.loads(blob)
        except Exception:
            return
        self._completed[key] = (value, float(record.get("elapsed_s", 0.0)))
        self._labels[key] = label
        self._failed.pop(key, None)

    def completed(self) -> dict[str, Any]:
        """Results of every journaled-complete point, keyed by spec key.

        Empty when the journal is not mergeable (schema or model-constant
        mismatch): resume then recomputes every point rather than mixing
        artifacts from two model versions.
        """
        if not self._mergeable:
            return {}
        return {key: value for key, (value, _) in self._completed.items()}

    def failed(self) -> dict[str, str]:
        """Error strings of journaled-failed (quarantined) points."""
        return dict(self._failed)

    @property
    def mergeable(self) -> bool:
        return self._mergeable

    @property
    def complete(self) -> bool:
        return self._complete

    def label_for(self, key: str) -> str:
        return self._labels.get(key, "")

    # -- writing -------------------------------------------------------------

    def _append(self, record: dict) -> None:
        try:
            if self._handle is None:
                os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
                is_new = not os.path.exists(self.path)
                if not is_new:
                    # A crash can leave a torn final line with no newline;
                    # terminate it so the next record starts on its own
                    # line instead of being glued to (and lost with) it.
                    with open(self.path, "rb") as existing:
                        existing.seek(0, os.SEEK_END)
                        if existing.tell() > 0:
                            existing.seek(-1, os.SEEK_END)
                            torn = existing.read(1) != b"\n"
                        else:
                            torn = False
                self._handle = open(self.path, "a", encoding="utf-8")
                if not is_new and torn:
                    self._handle.write("\n")
                if is_new:
                    self._append_raw(
                        {
                            "kind": "header",
                            "run_id": self.run_id,
                            "experiment": self.experiment,
                            "schema": JOURNAL_SCHEMA_VERSION,
                            "model": model_constants_fingerprint(),
                            "created_unix": time.time(),
                        }
                    )
            self._append_raw(record)
        except OSError as exc:
            raise JournalError(
                f"cannot append to run journal {self.path}: {exc}"
            ) from exc

    def _append_raw(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record_point(
        self, key: str, value: Any, label: str = "", elapsed_s: float = 0.0
    ) -> bool:
        """Journal one completed point; returns False when the result is
        unpicklable (the point simply stays non-resumable)."""
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        self._append(
            {
                "kind": "point",
                "key": key,
                "label": label,
                "status": "ok",
                "payload": base64.b64encode(blob).decode("ascii"),
                "sha256": hashlib.sha256(blob).hexdigest(),
                "elapsed_s": elapsed_s,
            }
        )
        self._completed[key] = (value, elapsed_s)
        self._labels[key] = label
        self._failed.pop(key, None)
        return True

    def record_failure(self, key: str, error: str, label: str = "") -> None:
        """Journal one quarantined point (retried on the next resume)."""
        self._append(
            {
                "kind": "point",
                "key": key,
                "label": label,
                "status": "failed",
                "error": error,
            }
        )
        self._failed[key] = error
        self._labels[key] = label

    def record_end(self, status: str = "complete") -> None:
        """Mark the run finished (``repro perf runs`` shows it complete)."""
        self._append({"kind": "end", "status": status})
        self._complete = status == "complete"

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The active journal: how `repro bench` hands a journal to experiment
# functions without changing their signatures.
# ---------------------------------------------------------------------------

_ACTIVE_JOURNAL: RunJournal | None = None


def activate_journal(journal: RunJournal | None) -> None:
    """Install (or clear) the process-wide journal ``run_sweep`` uses by
    default.  The CLI activates the run's journal around the experiment
    call; library callers can also pass ``journal=`` explicitly."""
    global _ACTIVE_JOURNAL
    _ACTIVE_JOURNAL = journal


def current_journal() -> RunJournal | None:
    return _ACTIVE_JOURNAL


# ---------------------------------------------------------------------------
# Run listing (repro perf runs)
# ---------------------------------------------------------------------------


def list_runs(runs_dir: str | None = None) -> list[RunInfo]:
    """Summaries of every journaled run, newest first."""
    directory = runs_dir or default_runs_dir()
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    infos: list[RunInfo] = []
    for name in names:
        if not name.endswith(_RUN_SUFFIX):
            continue
        path = os.path.join(directory, name)
        info = RunInfo(run_id=name[: -len(_RUN_SUFFIX)], path=path)
        _scan_run(path, info)
        infos.append(info)
    infos.sort(key=lambda i: i.created_unix, reverse=True)
    return infos


def _scan_run(path: str, info: RunInfo) -> None:
    """Cheap single-pass scan of a journal file for listing purposes."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError:
        return
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict):
            continue
        kind = record.get("kind")
        if kind == "header":
            info.experiment = record.get("experiment", "")
            info.created_unix = float(record.get("created_unix", 0.0))
            if record.get("schema") != JOURNAL_SCHEMA_VERSION:
                info.mergeable = False
            if record.get("model") != model_constants_fingerprint():
                info.mergeable = False
        elif kind == "point":
            if record.get("status") == "failed":
                info.points_failed += 1
            else:
                info.points_ok += 1
        elif kind == "end":
            info.complete = record.get("status") == "complete"


def runs_report(runs_dir: str | None = None) -> str:
    """A human-readable table of journaled runs."""
    infos = list_runs(runs_dir)
    directory = runs_dir or default_runs_dir()
    lines = [f"runs directory: {directory}"]
    if not infos:
        lines.append("  (no journaled runs)")
        return "\n".join(lines)
    for info in infos:
        status = "complete" if info.complete else "partial"
        if not info.mergeable:
            status += ", stale-model"
        stamp = (
            time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(info.created_unix))
            if info.created_unix
            else "?"
        )
        lines.append(
            f"  {info.run_id}: {info.experiment or '?'} — "
            f"{info.points_ok} ok, {info.points_failed} failed "
            f"({status}, {stamp})"
        )
    lines.append("  resume with: python -m repro bench <experiment> --resume <run-id>")
    return "\n".join(lines)
