"""Content-addressed memoization for ``compile_design`` and ``simulate``.

Two tiers:

* an in-process dictionary, so repeated runs inside one harness
  invocation (e.g. the F1-V baseline every figure renormalizes against)
  are free;
* an on-disk pickle store under ``$REPRO_CACHE_DIR`` (default
  ``~/.cache/repro-tapa-cs``, honouring ``$XDG_CACHE_HOME``), so the
  second invocation of a whole benchmark suite skips every ILP solve and
  discrete-event run it has seen before.

Keys are the content fingerprints of :mod:`repro.perf.fingerprint`: the
complete compiler input plus the model constants.  Changing an estimator
coefficient, a timing-model constant, or the cache schema version makes
every old key unreachable — stale entries are never *read*, only left
behind (``python -m repro perf --clear`` reclaims the space).

Set ``REPRO_NO_CACHE=1`` (or pass ``--no-cache`` to the CLI) to bypass
the cache entirely; set ``REPRO_CACHE_MEMORY_ONLY=1`` to keep the
in-process tier but skip the disk.  ``REPRO_CACHE_MEMORY_ENTRIES=N``
bounds the in-process tier to an N-entry LRU (0, the default, means
unbounded) — fleet worker processes set a bound so N workers sharing a
machine hold N small LRUs over one shared disk tier instead of N
unbounded dictionaries.

**Sharing.**  The disk tier is the *cross-worker artifact store*: any
number of processes — parallel sweeps, the serve fleet's workers, a
stray CLI invocation — may point at one ``REPRO_CACHE_DIR``
concurrently.  Writers are atomic (temp file + ``os.replace`` under the
``flock``), readers verify checksums, so a compile finished by one
fleet worker is immediately and safely a disk hit for every other.
After ``os.fork()`` the child gets a *fresh* cache object carrying the
parent's configuration but none of its mutable state (memory tier,
stats), so forked workers never double-count or share a dict without a
lock; see :func:`_after_fork_in_child`.

**Integrity.**  Disk entries are self-verifying: a small header carries
a format magic (which doubles as the entry schema version) and the
SHA-256 of the pickled payload.  A truncated, scribbled-on, or
older-format entry is *never* surfaced to the caller — it is evicted,
counted in ``stats.corrupt_evictions``, logged as a structured warning,
and treated as a miss, so on-disk corruption only ever costs recompute
time.  Writers stage into a temp file and ``os.replace`` under a
cross-process ``flock`` on ``<dir>/.lock``, so any number of concurrent
sweeps may share one ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Any

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from .fingerprint import fingerprint_compile, fingerprint_simulate

_ENTRY_SUFFIX = ".pkl"

#: Entry format magic; the trailing digit is the entry schema version.
#: Bumping it silently invalidates (evicts on read) every older entry.
_ENTRY_MAGIC = b"RPC2"
#: magic + 32-byte SHA-256 of the pickled payload.
_ENTRY_HEADER_LEN = len(_ENTRY_MAGIC) + 32

_LOCK_NAME = ".lock"

logger = logging.getLogger("repro.perf.cache")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "") not in ("", "0")


def default_cache_dir() -> str:
    """The on-disk cache location, env-overridable."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro-tapa-cs")


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting for one cache (or one merged report)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    #: Corrupt/truncated/stale-format disk entries evicted on read —
    #: each one cost a recompute, never an exception.
    corrupt_evictions: int = 0
    #: Memory-tier entries dropped by the LRU bound (the disk tier, when
    #: enabled, still holds them — an eviction costs a disk read, not a
    #: recompute).
    memory_evictions: int = 0
    #: Wall-clock seconds the original computations took, re-earned on
    #: every hit — the headline "time saved" number.
    seconds_saved: float = 0.0
    #: Compiles whose floorplan came from a degraded ladder tier and were
    #: therefore *not* stored — a deadline-squeezed artifact must never
    #: satisfy a later unhurried request for the same design.
    degraded_compiles: int = 0

    def as_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def add(self, other: "CacheStats | dict[str, Any]") -> None:
        """Accumulate another stats record (used to merge worker stats)."""
        values = other.as_dict() if isinstance(other, CacheStats) else other
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + values.get(f.name, 0))


@dataclass(slots=True)
class DesignCache:
    """In-memory + on-disk store of compile/simulate artifacts."""

    directory: str = field(default_factory=default_cache_dir)
    enabled: bool = True
    use_disk: bool = True
    #: LRU bound on the in-process tier; 0 means unbounded (the
    #: historical behaviour, right for one long-lived process that owns
    #: the machine; fleet workers set a bound via
    #: ``REPRO_CACHE_MEMORY_ENTRIES``).
    memory_limit: int = 0
    stats: CacheStats = field(default_factory=CacheStats)
    #: Insertion-ordered: first key is least-recently-used.
    _memory: dict[str, tuple[Any, float]] = field(default_factory=dict)

    def _touch(self, fingerprint: str) -> None:
        """Mark an entry most-recently-used (dict order is LRU order)."""
        self._memory[fingerprint] = self._memory.pop(fingerprint)

    def _enforce_memory_limit(self) -> None:
        while 0 < self.memory_limit < len(self._memory):
            self._memory.pop(next(iter(self._memory)))
            self.stats.memory_evictions += 1

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.directory, fingerprint + _ENTRY_SUFFIX)

    @contextmanager
    def _locked(self):
        """Cross-process exclusive lock on the cache directory.

        Guards the write/evict paths so concurrent sweeps sharing one
        ``REPRO_CACHE_DIR`` never interleave a rename with an unlink.
        Reads stay lock-free: entries are only ever created whole (temp
        file + atomic ``os.replace``), so a reader sees a complete old
        or complete new file, never a torn one.  Degrades to a no-op
        where ``flock`` is unavailable or the directory is unusable.
        """
        if fcntl is None:
            yield
            return
        handle = None
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle = open(os.path.join(self.directory, _LOCK_NAME), "a+b")
            fcntl.flock(handle, fcntl.LOCK_EX)
        except OSError:
            if handle is not None:
                handle.close()
                handle = None
        try:
            yield
        finally:
            if handle is not None:
                try:
                    fcntl.flock(handle, fcntl.LOCK_UN)
                except OSError:
                    pass
                handle.close()

    def _evict_corrupt(self, fingerprint: str, reason: str) -> None:
        """Drop an unreadable disk entry; log, count, never raise."""
        path = self._path(fingerprint)
        logger.warning(
            "evicting unreadable cache entry %s (%s) from %s — "
            "it will be recomputed",
            fingerprint[:16],
            reason,
            self.directory,
        )
        self.stats.corrupt_evictions += 1
        with self._locked():
            try:
                os.unlink(path)
            except OSError:
                pass

    def _read_entry(self, fingerprint: str) -> tuple[Any, float, int] | str:
        """Read + verify one disk entry.

        Returns ``(value, elapsed_seconds, blob_len)`` on success, or a
        reason string ("missing" means a plain miss, anything else names
        the corruption that the caller should evict).
        """
        path = self._path(fingerprint)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return "missing"
        if len(raw) <= _ENTRY_HEADER_LEN:
            return "truncated"
        if not raw.startswith(_ENTRY_MAGIC):
            return "stale-format"
        digest = raw[len(_ENTRY_MAGIC):_ENTRY_HEADER_LEN]
        blob = raw[_ENTRY_HEADER_LEN:]
        if hashlib.sha256(blob).digest() != digest:
            return "checksum-mismatch"
        try:
            payload = pickle.loads(blob)
        except Exception:
            # Checksummed but undecodable: written by a build whose
            # classes no longer unpickle here.  Same remedy — evict.
            return "undecodable"
        if not isinstance(payload, dict) or "value" not in payload:
            return "bad-schema"
        return (
            payload["value"],
            float(payload.get("elapsed_seconds", 0.0)),
            len(raw),
        )

    def get(self, fingerprint: str) -> Any | None:
        """The cached value for a fingerprint, or None on a miss.

        Any form of on-disk damage — truncation, bit-flips, an entry
        from an older format — reads as a miss: the file is evicted and
        the caller recomputes.  Corruption can change *when* work runs,
        never *what* it produces.
        """
        if not self.enabled:
            return None
        entry = self._memory.get(fingerprint)
        if entry is not None:
            value, elapsed = entry
            self._touch(fingerprint)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            self.stats.seconds_saved += elapsed
            return value
        if self.use_disk:
            loaded = self._read_entry(fingerprint)
            if isinstance(loaded, tuple):
                value, elapsed, nbytes = loaded
                self._memory[fingerprint] = (value, elapsed)
                self._enforce_memory_limit()
                self.stats.hits += 1
                self.stats.disk_hits += 1
                self.stats.bytes_read += nbytes
                self.stats.seconds_saved += elapsed
                return value
            if loaded != "missing":
                self._evict_corrupt(fingerprint, loaded)
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, value: Any, elapsed_seconds: float) -> None:
        """Store a computed value plus the wall time it cost to make."""
        if not self.enabled:
            return
        self._memory.pop(fingerprint, None)
        self._memory[fingerprint] = (value, elapsed_seconds)
        self._enforce_memory_limit()
        self.stats.stores += 1
        if not self.use_disk:
            return
        try:
            blob = pickle.dumps(
                {"value": value, "elapsed_seconds": elapsed_seconds},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except (pickle.PicklingError, TypeError, AttributeError):
            # Designs carrying functional bodies (closures) stay
            # memory-only; everything the benches produce is picklable.
            return
        path = self._path(fingerprint)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            # An unusable directory (e.g. the path is a regular file)
            # degrades to the memory tier instead of aborting the run.
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp, "wb") as handle:
                handle.write(_ENTRY_MAGIC)
                handle.write(hashlib.sha256(blob).digest())
                handle.write(blob)
            with self._locked():
                os.replace(tmp, path)
            self.stats.bytes_written += len(blob)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- maintenance ---------------------------------------------------------

    def disk_entries(self) -> list[str]:
        """Fingerprints currently stored on disk."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return sorted(
            n[: -len(_ENTRY_SUFFIX)] for n in names if n.endswith(_ENTRY_SUFFIX)
        )

    def disk_bytes(self) -> int:
        total = 0
        for fp in self.disk_entries():
            try:
                total += os.path.getsize(self._path(fp))
            except OSError:
                pass
        return total

    def clear(self, disk: bool = True) -> int:
        """Drop the memory tier and (optionally) every disk entry."""
        removed = len(self._memory)
        self._memory.clear()
        if disk:
            with self._locked():
                for fp in self.disk_entries():
                    try:
                        os.unlink(self._path(fp))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def fsck(self) -> tuple[int, int]:
        """Verify every disk entry; evict the damaged ones.

        Returns ``(checked, evicted)``.  ``repro perf --fsck`` runs this
        to reclaim a cache directory after a disk hiccup without waiting
        for each bad entry to be discovered at read time.
        """
        checked = evicted = 0
        for fp in self.disk_entries():
            checked += 1
            loaded = self._read_entry(fp)
            if isinstance(loaded, tuple) or loaded == "missing":
                continue
            self._evict_corrupt(fp, loaded)
            evicted += 1
        return checked, evicted


_GLOBAL_CACHE: DesignCache | None = None


def _env_memory_limit() -> int:
    try:
        return max(0, int(os.environ.get("REPRO_CACHE_MEMORY_ENTRIES", "0")))
    except ValueError:
        return 0


def _after_fork_in_child() -> None:
    # A forked worker (the sweep pool, the serve fleet) must not share
    # the parent's mutable cache state: its memory dict was built under
    # the parent's threads and its stats would double-count once both
    # processes report.  Rebuild a *fresh* cache carrying the parent's
    # configuration — this preserves a CLI-configured --cache-dir in the
    # child, which a plain reset-to-env would lose.  The shared state
    # that matters (the artifact store) lives on disk, keyed by content
    # and guarded by flock, so the child loses nothing but dict warmth.
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is not None:
        parent = _GLOBAL_CACHE
        _GLOBAL_CACHE = DesignCache(
            directory=parent.directory,
            enabled=parent.enabled,
            use_disk=parent.use_disk,
            memory_limit=parent.memory_limit,
        )


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_after_fork_in_child)


def get_cache() -> DesignCache:
    """The process-wide cache, created lazily from the environment."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None:
        _GLOBAL_CACHE = DesignCache(
            directory=default_cache_dir(),
            enabled=not _env_flag("REPRO_NO_CACHE"),
            use_disk=not _env_flag("REPRO_CACHE_MEMORY_ONLY"),
            memory_limit=_env_memory_limit(),
        )
    return _GLOBAL_CACHE


def configure_cache(
    directory: str | None = None,
    enabled: bool | None = None,
    use_disk: bool | None = None,
    memory_limit: int | None = None,
) -> DesignCache:
    """Reconfigure the process-wide cache (CLI flags route here).

    Forked children (sweep pool workers, fleet workers) inherit the
    configuration set here: the after-fork hook rebuilds their cache
    from this object's fields, not from the environment.
    """
    cache = get_cache()
    if directory is not None and directory != cache.directory:
        cache.directory = directory
        cache._memory.clear()
    if enabled is not None:
        cache.enabled = enabled
    if use_disk is not None:
        cache.use_disk = use_disk
    if memory_limit is not None:
        cache.memory_limit = max(0, memory_limit)
        cache._enforce_memory_limit()
    return cache


def reset_cache() -> None:
    """Forget the process-wide cache (tests re-read the environment)."""
    global _GLOBAL_CACHE
    _GLOBAL_CACHE = None


def cache_stats() -> CacheStats:
    return get_cache().stats


def merge_stats(delta: dict[str, Any]) -> None:
    """Fold a worker process's stats delta into this process's stats."""
    get_cache().stats.add(delta)


def stats_report() -> str:
    """A short human-readable cache report."""
    cache = get_cache()
    s = cache.stats
    lines = [
        f"cache directory: {cache.directory}"
        + ("" if cache.enabled else "  (disabled)"),
        f"  disk entries: {len(cache.disk_entries())}"
        f" ({cache.disk_bytes() / 1e6:.2f} MB)",
        f"  this session: {s.hits} hits ({s.memory_hits} memory,"
        f" {s.disk_hits} disk), {s.misses} misses, {s.stores} stores",
        f"  seconds saved by hits: {s.seconds_saved:.2f}",
    ]
    if s.corrupt_evictions:
        lines.append(
            f"  corrupt entries evicted (recomputed): {s.corrupt_evictions}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Memoized entry points
# ---------------------------------------------------------------------------


def cached_compile(graph, cluster, config=None, flow: str = "tapa-cs", faults=None):
    """``compile_design`` through the content-addressed cache.

    On a hit the stored :class:`~repro.core.plan.CompiledDesign` is
    returned as-is (callers must treat it as immutable); on a miss the
    compiler runs and the artifact is stored together with its wall time.
    A fault scenario joins the cache key (healthy scenarios normalize to
    the no-scenario key, since the compiler output is identical).
    """
    from ..core.compiler import CompilerConfig, compile_design

    config = config or CompilerConfig()
    cache = get_cache()
    if not cache.enabled:
        return compile_design(graph, cluster, config, flow=flow, faults=faults)
    fingerprint = fingerprint_compile(graph, cluster, config, flow, faults=faults)
    hit = cache.get(fingerprint)
    if hit is not None:
        return hit
    start = time.perf_counter()
    design = compile_design(graph, cluster, config, flow=flow, faults=faults)
    design.fingerprint = fingerprint
    if getattr(design, "floorplan_tier", "full") != "full":
        # A deadline-degraded floorplan is correct but not *the* answer
        # for this fingerprint; caching it would let one hurried request
        # poison every later unhurried one.
        cache.stats.degraded_compiles += 1
        return design
    cache.put(fingerprint, design, time.perf_counter() - start)
    return design


def cached_simulate(design, config=None, faults=None):
    """``simulate`` through the content-addressed cache."""
    from ..sim.execution import SimulationConfig, simulate

    config = config or SimulationConfig()
    cache = get_cache()
    if not cache.enabled:
        return simulate(design, config, faults=faults)
    fingerprint = fingerprint_simulate(design, config, faults=faults)
    hit = cache.get(fingerprint)
    if hit is not None:
        return hit
    start = time.perf_counter()
    result = simulate(design, config, faults=faults)
    cache.put(fingerprint, result, time.perf_counter() - start)
    return result
