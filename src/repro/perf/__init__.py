"""Performance infrastructure: content-addressed caching + parallel sweeps.

The paper's own pitch is turnaround time — TAPA-CS synthesizes tasks in
parallel precisely because compile latency gates design iteration.  The
reproduction's experiment harness replays the same (graph, cluster,
config, flow) combinations dozens of times across tables and figures, so
this package provides:

* :mod:`repro.perf.fingerprint` — a stable content fingerprint over the
  complete compiler input (task graph, cluster, compiler config, flow)
  plus the model constants the outputs depend on;
* :mod:`repro.perf.cache` — an in-memory + on-disk memoization layer for
  ``compile_design`` and ``simulate`` keyed by that fingerprint, with
  hit/miss/seconds-saved accounting;
* :mod:`repro.perf.sweep` — a supervised process-pool sweep executor
  that fans independent (flow x parameter) experiment runs across
  cores, with per-job timeouts, retry/backoff, quarantine, and pool
  respawn on worker death;
* :mod:`repro.perf.journal` — append-only, fsync'd JSONL run journals
  that make interrupted sweeps resumable (``repro bench --resume``).
"""

from .cache import (
    CacheStats,
    DesignCache,
    cache_stats,
    cached_compile,
    cached_simulate,
    configure_cache,
    get_cache,
    merge_stats,
    reset_cache,
    stats_report,
)
from .fingerprint import (
    CACHE_SCHEMA_VERSION,
    canonical_json,
    cluster_fingerprint,
    design_fingerprint,
    fingerprint_compile,
    fingerprint_simulate,
    model_constants_fingerprint,
    to_jsonable,
)
from .journal import (
    RunInfo,
    RunJournal,
    activate_journal,
    current_journal,
    default_runs_dir,
    list_runs,
    new_run_id,
    runs_report,
    spec_key,
)
from .sweep import (
    SweepFailure,
    SweepOutcome,
    SweepSpec,
    WorkerSupervisor,
    resolve_jobs,
    run_sweep,
    run_sweep_outcome,
    take_failure_report,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "DesignCache",
    "RunInfo",
    "RunJournal",
    "SweepFailure",
    "SweepOutcome",
    "SweepSpec",
    "WorkerSupervisor",
    "activate_journal",
    "current_journal",
    "default_runs_dir",
    "list_runs",
    "new_run_id",
    "run_sweep_outcome",
    "runs_report",
    "spec_key",
    "take_failure_report",
    "cache_stats",
    "cached_compile",
    "cached_simulate",
    "canonical_json",
    "cluster_fingerprint",
    "configure_cache",
    "design_fingerprint",
    "fingerprint_compile",
    "fingerprint_simulate",
    "get_cache",
    "merge_stats",
    "model_constants_fingerprint",
    "reset_cache",
    "resolve_jobs",
    "run_sweep",
    "stats_report",
    "to_jsonable",
]
