"""Stable content fingerprints for compiler inputs and outputs.

A fingerprint is the SHA-256 of a *canonical JSON* document covering
everything a :func:`repro.core.compiler.compile_design` result depends
on:

* the task graph, in document order (insertion order can steer solver
  tie-breaking, so two graphs with the same content but different order
  are deliberately distinct keys);
* the cluster — devices, part parameters, node placement, topology, and
  link media;
* the full :class:`~repro.core.compiler.CompilerConfig`, including every
  ablation switch and both floorplanner configs;
* the flow label;
* the model constants the outputs are computed from: the HLS estimator
  coefficients, the timing-model calibration, and the network link
  catalog.  Editing any of those constants changes the fingerprint and
  therefore invalidates every cached artifact built from them.

``CACHE_SCHEMA_VERSION`` is a manual escape hatch: bump it whenever the
compiler's *algorithms* change in a way the constant values cannot see.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from functools import lru_cache
from pathlib import Path
from typing import Any

from ..cluster.cluster import Cluster
from ..cluster.topology import Topology
from ..graph.graph import TaskGraph
from ..graph.serialize import FORMAT_VERSION, design_summary, graph_to_dict

#: Bump on any algorithmic change that alters compile/simulate outputs
#: without touching a fingerprinted constant.
CACHE_SCHEMA_VERSION = 1


def to_jsonable(obj: Any) -> Any:
    """Convert a value tree into a deterministic JSON-able structure.

    Handles dataclasses (including frozen/slots ones), enums, mappings,
    sequences, and sets.  Floats keep full ``repr`` precision so that two
    configs differing in the last ulp hash differently.  Unknown object
    types raise ``TypeError`` — silent fallbacks (like ``repr`` with a
    memory address) would poison keys with false misses.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, Enum):
        return {"__enum__": type(obj).__name__, "value": to_jsonable(obj.value)}
    if isinstance(obj, Topology):
        # The full pairwise distance matrix, not just the name: two
        # same-named topologies with different metrics (a custom subclass,
        # a fault-degraded topology) must not collide, and the matrix is
        # the exact quantity the floorplanner and simulator consume.
        return {
            "__topology__": obj.name,
            "num_devices": obj.num_devices,
            "dist": [
                [obj.dist(i, j) for j in range(obj.num_devices)]
                for i in range(obj.num_devices)
            ],
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: to_jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(v) for v in obj)
    if callable(obj):
        return {"__callable__": getattr(obj, "__qualname__", repr(type(obj)))}
    raise TypeError(f"cannot fingerprint object of type {type(obj).__name__}")


def canonical_json(document: Any) -> str:
    """Serialize a JSON-able document with a canonical byte layout."""
    return json.dumps(
        to_jsonable(document), sort_keys=True, separators=(",", ":")
    )


def _digest(document: Any) -> str:
    return hashlib.sha256(canonical_json(document).encode()).hexdigest()


#: Subpackages whose source content determines compile/simulate outputs.
#: bench/cli/perf are deliberately excluded — harness changes must not
#: evict compiled artifacts.
_MODEL_PACKAGES = (
    "cluster",
    "core",
    "devices",
    "graph",
    "hls",
    "network",
    "sim",
    "timing",
)


@lru_cache(maxsize=1)
def _model_source_digest() -> str:
    """Digest of the model-critical source files themselves.

    Value-based constant fingerprints cannot see an *algorithm* change,
    so any edit to the behaviour-defining subpackages also invalidates
    the cache.  Computed once per process (~1 ms)."""
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for package in _MODEL_PACKAGES:
        for source in sorted((root / package).glob("*.py")):
            digest.update(source.name.encode())
            digest.update(source.read_bytes())
    return digest.hexdigest()


def model_constants_fingerprint() -> str:
    """Digest of every model constant a compiled design depends on.

    Covers the HLS estimator coefficients, the timing-model defaults, the
    AlveoLink/network link catalog, the serialization format version, and
    a digest of the model-defining source packages.  Cached entries keyed
    under an older constant set simply stop matching — that is the
    invalidation rule.
    """
    from ..cluster.links import ETHERNET_100G, INTER_NODE_10G, PCIE_GEN3X16
    from ..hls.estimator import DEFAULT_COEFFICIENTS
    from ..network.alveolink import ALVEOLINK
    from ..network.internode import INTER_NODE_PATH
    from ..timing.frequency import DEFAULT_TIMING

    return _digest(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "graph_format": FORMAT_VERSION,
            "estimator": DEFAULT_COEFFICIENTS,
            "timing": DEFAULT_TIMING,
            "alveolink": ALVEOLINK,
            "inter_node": INTER_NODE_PATH,
            "links": [ETHERNET_100G, PCIE_GEN3X16, INTER_NODE_10G],
        }
    )


def cluster_fingerprint(cluster: Cluster) -> dict[str, Any]:
    """A JSON-able document describing a cluster's full identity."""
    return {
        "devices": [
            {
                "device_num": dev.device_num,
                "part": dev.part,
                "node": dev.node,
                "reserved": dev.reserved,
            }
            for dev in cluster.devices
        ],
        "topology": cluster.topology,
        "intra_node_link": cluster.intra_node_link,
        "inter_node_link": cluster.inter_node_link,
    }


def fingerprint_compile(
    graph: TaskGraph, cluster: Cluster, config: Any, flow: str,
    faults: Any = None,
) -> str:
    """Content fingerprint of one ``compile_design`` invocation.

    A fault scenario joins the key only when present, so every
    pre-existing cache entry keeps its fingerprint; the healthy scenario
    is normalized to the no-scenario key (the compiler guarantees the
    outputs are identical).
    """
    document = {
        "kind": "compile",
        "model": model_constants_fingerprint(),
        "graph": graph_to_dict(graph),
        "cluster": cluster_fingerprint(cluster),
        "config": config,
        "flow": flow,
    }
    if faults is not None and not faults.is_healthy:
        document["faults"] = faults.to_dict()
    return _digest(document)


def design_fingerprint(design: Any) -> str:
    """Fingerprint of a compiled design artifact.

    Designs produced through :func:`repro.perf.cache.cached_compile`
    carry their input fingerprint; anything else (e.g. a design compiled
    directly) is fingerprinted from its observable outputs — the
    post-transformation graph plus the full decision summary.
    """
    if getattr(design, "fingerprint", None):
        return design.fingerprint
    return _digest(
        {
            "kind": "design",
            "model": model_constants_fingerprint(),
            "graph": graph_to_dict(design.graph),
            "cluster": cluster_fingerprint(design.cluster),
            "summary": design_summary(design),
        }
    )


def fingerprint_simulate(design: Any, sim_config: Any, faults: Any = None) -> str:
    """Content fingerprint of one ``simulate`` invocation.

    As with compiles, a fault scenario joins the key only when present
    and non-healthy, keeping old cache entries addressable.
    """
    document = {
        "kind": "simulate",
        "design": design_fingerprint(design),
        "sim_config": sim_config,
    }
    if faults is not None and not faults.is_healthy:
        document["faults"] = faults.to_dict()
    return _digest(document)
