"""Shared supervision primitives: retry backoff and crash-loop quarantine.

Two supervisors in this codebase keep unreliable workers alive: the
sweep executor's :class:`~repro.perf.sweep.WorkerSupervisor` (pool
workers running independent bench points) and the serving fleet's
:class:`~repro.serve.fleet.WorkerFleet` (long-lived compile workers
behind the broker).  Both need the same two policies, factored here so
they cannot drift:

* :class:`BackoffPolicy` — capped exponential backoff with jitter.
  Jitter matters whenever several failures land together (a pool crash
  retries every in-flight job; a machine hiccup restarts several
  workers): without it the retries re-collide in lockstep.
* :class:`RespawnGovernor` — per-slot crash accounting.  A worker slot
  that keeps dying the moment it is respawned is in a crash loop;
  respawning it at full speed burns CPU and floods the logs without
  ever serving a request.  The governor schedules each respawn on the
  backoff curve and, past ``quarantine_threshold`` consecutive crashes,
  quarantines the slot for a cooldown before the next attempt.  One
  successful job resets the account.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass(slots=True)
class BackoffPolicy:
    """Capped exponential backoff with multiplicative jitter."""

    #: Delay before the first retry; 0 disables backoff entirely.
    base_s: float = 0.1
    #: Upper bound the exponential curve saturates at.
    cap_s: float = 5.0
    #: Jitter fraction: each delay is scaled by uniform(1-j, 1+j).
    jitter: float = 0.25

    def delay(self, attempts: int) -> float:
        """The wait before retry number ``attempts`` (1-based)."""
        if self.base_s <= 0.0:
            return 0.0
        delay = min(self.base_s * (2 ** max(0, attempts - 1)), self.cap_s)
        return delay * random.uniform(1.0 - self.jitter, 1.0 + self.jitter)


@dataclass(slots=True)
class RespawnGovernor:
    """Crash-loop accounting for one respawnable worker slot.

    The owner reports :meth:`crashed` / :meth:`succeeded`; the governor
    answers *when* the slot may be respawned (:meth:`respawn_at`) and
    whether it is currently quarantined.  The clock is injectable so
    tests drive quarantine expiry without sleeping.
    """

    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    #: Consecutive crashes after which the slot is quarantined.
    quarantine_threshold: int = 3
    #: How long a quarantined slot sits out before the next attempt.
    quarantine_cooldown_s: float = 5.0
    clock: Callable[[], float] = time.monotonic
    consecutive_crashes: int = 0
    total_crashes: int = 0
    _next_respawn_at: float = 0.0

    def crashed(self) -> None:
        """Record one crash and schedule the next respawn."""
        self.consecutive_crashes += 1
        self.total_crashes += 1
        if self.consecutive_crashes >= self.quarantine_threshold:
            delay = self.quarantine_cooldown_s
        else:
            delay = self.backoff.delay(self.consecutive_crashes)
        self._next_respawn_at = self.clock() + delay

    def succeeded(self) -> None:
        """One completed job clears the crash-loop account."""
        self.consecutive_crashes = 0
        self._next_respawn_at = 0.0

    @property
    def quarantined(self) -> bool:
        """Is the slot sitting out a crash-loop cooldown right now?"""
        return (
            self.consecutive_crashes >= self.quarantine_threshold
            and self.clock() < self._next_respawn_at
        )

    def respawn_at(self) -> float:
        """Earliest clock reading at which a respawn is allowed."""
        return self._next_respawn_at

    def may_respawn(self) -> bool:
        return self.clock() >= self._next_respawn_at
