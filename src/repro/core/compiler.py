"""The TAPA-CS compiler driver: the seven steps of Figure 5.

1. task graph construction   — done by the caller (the graph *is* the IR);
2. task extraction and parallel synthesis;
3. inter-FPGA floorplanning (topology-aware ILP);
4. inter-FPGA communication logic insertion;
5. intra-FPGA floorplanning per device;
6. interconnect pipelining with cut-set balancing;
7. constraint/bitstream emission — here, the :class:`CompiledDesign`
   artifact plus a frequency estimate (we cannot run Vivado, so the
   timing model stands in for the bitstream's achieved Fmax).

Three flows are provided, matching the paper's evaluated configurations:

* ``compile_design``          — the full TAPA-CS flow (F2/F3/F4/...);
* ``compile_single_tapa``     — TAPA/AutoBridge on one FPGA (F1-T);
* ``compile_single_vitis``    — plain Vitis HLS on one FPGA (F1-V):
  no floorplanning, no interconnect pipelining, naive packing and naive
  HBM binding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from ..cluster.cluster import Cluster, make_cluster
from ..deadline import current_deadline
from ..errors import (
    DeadlineExceededError,
    DegradedClusterError,
    InfeasibleError,
    SolverError,
    TapaCSError,
)
from ..devices.fpga import FPGAInstance, FPGAPart
from ..devices.parts import ALVEO_U55C
from ..faults.apply import DegradedTopology, apply_faults
from ..faults.scenario import FaultScenario
from ..graph.graph import TaskGraph
from ..hls.synthesis import synthesize
from ..ilp.solver import drain_solve_log
from ..network.alveolink import port_overhead
from ..timing.frequency import (
    DEFAULT_TIMING,
    TimingInputs,
    TimingModelConfig,
    estimate_frequency_mhz,
)
from .comm_insertion import insert_communication
from .hbm_binding import HBMBinding, bind_hbm_channels
from .inter_floorplan import (
    InterFloorplanConfig,
    floorplan_inter,
)
from .intra_floorplan import (
    IntraFloorplan,
    IntraFloorplanConfig,
    floorplan_intra,
)
from .ladder import (
    TIERS,
    choose_start_tier,
    floorplan_inter_coarse,
    record_tier,
    tier_config,
    tiers_from,
)
from .pipelining import PipelineResult, pipeline_device, verify_balanced
from .plan import CompiledDesign


@dataclass(slots=True)
class CompilerConfig:
    """All the knobs of the TAPA-CS flow, with ablation switches."""

    threshold: float = 0.7
    inter: InterFloorplanConfig = field(default_factory=InterFloorplanConfig)
    intra: IntraFloorplanConfig = field(default_factory=IntraFloorplanConfig)
    timing: TimingModelConfig = DEFAULT_TIMING
    enable_pipelining: bool = True
    enable_balancing: bool = True
    enable_hbm_exploration: bool = True
    enable_intra_floorplan: bool = True
    #: Reserve network-port resources on every device before inter-FPGA
    #: floorplanning so the AlveoLink IPs always fit.
    reserve_network_ports: bool = True
    #: Static design-rule checking: ``"error"`` rejects graphs that fail
    #: pre-flight DRC with :class:`~repro.errors.DesignRuleError`,
    #: ``"warn"`` downgrades those errors to diagnostics on the compiled
    #: design, ``"off"`` skips DRC entirely (legacy ``validate()`` only).
    drc: str = "error"
    #: Per-task wall-clock budget for the parallel synthesis step; a task
    #: that exceeds it raises :class:`~repro.errors.SynthesisTimeoutError`
    #: naming the task instead of hanging the whole compile.  ``None``
    #: defers to ``REPRO_SYNTH_TIMEOUT_S`` (unset means unlimited).
    synthesis_task_timeout_s: float | None = None
    #: Best floorplan quality tier the ladder may attempt (see
    #: :mod:`repro.core.ladder`).  ``"full"`` is the normal flow; a lower
    #: start skips the expensive tiers outright — e.g. the serving layer
    #: forces ``"greedy"`` while the ILP circuit breaker is open.
    ladder_start: str = "full"

    def __post_init__(self) -> None:
        # Keep one threshold across both layers unless explicitly overridden.
        self.inter = replace(self.inter, threshold=self.threshold)
        self.intra = replace(self.intra, threshold=self.threshold)
        if self.drc not in ("error", "warn", "off"):
            raise TapaCSError(
                f"CompilerConfig.drc must be 'error', 'warn', or 'off', "
                f"not {self.drc!r}"
            )
        if self.ladder_start not in TIERS:
            raise TapaCSError(
                f"CompilerConfig.ladder_start must be one of {TIERS}, "
                f"not {self.ladder_start!r}"
            )


def _reserved_cluster(cluster: Cluster, config: CompilerConfig) -> Cluster:
    """A view of the cluster with AlveoLink port area pre-reserved."""
    if not config.reserve_network_ports or cluster.num_devices == 1:
        return cluster
    devices = []
    for dev in cluster.devices:
        overhead = port_overhead(dev.part) * dev.part.num_qsfp_ports
        devices.append(
            FPGAInstance(
                device_num=dev.device_num,
                part=dev.part,
                node=dev.node,
                reserved=dev.reserved + overhead,
            )
        )
    return Cluster(
        devices=devices,
        topology=cluster.topology,
        intra_node_link=cluster.intra_node_link,
        inter_node_link=cluster.inter_node_link,
    )


def _worst_unpipelined_crossings(
    graph: TaskGraph, floorplan: IntraFloorplan, pipelined: bool
) -> float:
    """Worst-case unregistered die-crossing exposure, width-weighted.

    A 512-bit bus crossing two dies unregistered is the killer path; a
    32-bit scalar stream barely registers.  Crossing counts are therefore
    scaled by ``min(1, width/128)`` so that the wide-datapath designs
    (stencil, PageRank, KNN) pay full price while a systolic array's
    narrow streams stay fast — matching the paper's Vitis baselines
    (123-165 MHz for the former, 300 MHz for the 13x4 CNN).
    """
    if pipelined:
        return 0.0
    placed = set(floorplan.placement)
    return float(
        max(
            (
                floorplan.crossings(c.src, c.dst)
                * min(1.0, c.width_bits / 128.0)
                for c in graph.channels()
                if c.src in placed and c.dst in placed
            ),
            default=0,
        )
    )


def _device_timing_inputs(
    graph: TaskGraph,
    part: FPGAPart,
    floorplan: IntraFloorplan,
    binding: HBMBinding,
    network_bump: float,
    pipelined: bool,
) -> TimingInputs:
    return TimingInputs(
        max_unpipelined_crossings=_worst_unpipelined_crossings(
            graph, floorplan, pipelined
        ),
        max_slot_utilization=floorplan.max_slot_utilization(part) + network_bump,
        hbm_binding_quality=binding.quality(part),
    )


def _check_reachable(inter, cluster: Cluster, faults: FaultScenario | None) -> None:
    """Reject plans whose cut channels span disconnected survivors.

    The degraded topology gives unreachable pairs a huge-but-finite
    distance so the ILP steers away from them; if capacity still forces a
    stream across such a pair there is no physical path to carry it.
    """
    topology = cluster.topology
    if not isinstance(topology, DegradedTopology):
        return
    broken = sorted(
        {
            (inter.assignment[c.src], inter.assignment[c.dst])
            for c in inter.cut_channels
            if topology.is_unreachable(
                inter.assignment[c.src], inter.assignment[c.dst]
            )
        }
    )
    if broken:
        pairs = ", ".join(f"{a}<->{b}" for a, b in broken)
        raise DegradedClusterError(
            f"floorplan requires communication between devices with no "
            f"surviving network path: {pairs}",
            faults=faults.describe_faults() if faults is not None else [],
        )


def compile_design(
    graph: TaskGraph,
    cluster: Cluster,
    config: CompilerConfig | None = None,
    flow: str = "tapa-cs",
    faults: FaultScenario | None = None,
) -> CompiledDesign:
    """Run the full TAPA-CS pipeline on ``graph`` targeting ``cluster``.

    With a ``faults`` scenario the pipeline plans on the *surviving*
    substrate: failed devices are masked to zero capacity, down links are
    routed around, and the scenario's solver budget (if any) overrides the
    configured ILP time limits.  When the faults make the design
    unplaceable the raise is a :class:`DegradedClusterError` naming them,
    never an opaque infeasibility.  A healthy (or absent) scenario leaves
    every code path bit-for-bit identical to a plain compile.
    """
    config = config or CompilerConfig()
    deadline = current_deadline()
    if deadline is not None:
        deadline.check("compile")
    fault_active = faults is not None and not faults.is_healthy
    if faults is not None:
        cluster = apply_faults(cluster, faults)  # identity when healthy
        if faults.solver_time_limit is not None:
            config = replace(
                config,
                inter=replace(config.inter, time_limit=faults.solver_time_limit),
                intra=replace(config.intra, time_limit=faults.solver_time_limit),
            )
    stage_seconds: dict[str, float] = {}
    drain_solve_log()  # discard solves logged by earlier callers

    def _charge(stage: str, start_time: float) -> None:
        stage_seconds[stage] = (
            stage_seconds.get(stage, 0.0) + time.perf_counter() - start_time
        )

    # Step 1: pre-flight design-rule checking.  Errors on preflight rules
    # abort before any synthesis or solver time is spent; warnings (and
    # downgraded errors under drc="warn") ride along on the artifact.
    # Capacity-class rules never raise here — the floorplanning ILPs
    # re-derive those exactly and keep their InfeasibleError contract.
    stage_start = time.perf_counter()
    diagnostics: list = []
    if config.drc != "off":
        from ..check import RULES, DiagnosticReport, Severity, check_graph

        preflight = check_graph(graph)
        blocking = [d for d in preflight.errors if RULES[d.rule].preflight]
        if config.drc == "error" and blocking:
            DiagnosticReport(preflight.diagnostics).raise_if_errors(
                context=f"graph {graph.name!r}"
            )
        for diag in preflight:
            if diag.severity is Severity.ERROR:
                diag = replace(diag, severity=Severity.WARNING)
            diagnostics.append(diag)
    else:
        graph.validate()
    _charge("drc", stage_start)

    # Step 2: parallel synthesis.
    stage_start = time.perf_counter()
    base_report = synthesize(
        graph, task_timeout_s=config.synthesis_task_timeout_s
    )
    _charge("synthesis", stage_start)

    # Steps 3-5 run inside the quality ladder (see repro.core.ladder):
    # a tier that fails on a solver error or a deadline miss steps down
    # to a cheaper floorplanning strategy instead of failing the compile.
    planning_cluster = _reserved_cluster(cluster, config)

    def _plan(
        active: CompilerConfig, tier: str
    ) -> tuple[object, object, dict[int, IntraFloorplan], dict[int, HBMBinding], float]:
        """One ladder tier's attempt at steps 3-5 (with spread retries).

        The inter-FPGA ILP only sees device-level capacity, so a legal
        device assignment can still fail slot-level bin packing (e.g.
        seven half-slot modules on a six-slot grid).  When a device's
        intra floorplan is unroutable, redo the inter-FPGA floorplan at a
        tighter threshold, which spreads modules over more devices.
        """
        last_intra_error: InfeasibleError | None = None
        for inter_threshold in (
            active.inter.threshold,
            active.inter.threshold * 0.85,
            active.inter.threshold * 0.7,
        ):
            # Step 3: inter-FPGA floorplanning on the port-reserved cluster.
            stage_start = time.perf_counter()
            inter_fn = (
                floorplan_inter_coarse if tier == "coarse" else floorplan_inter
            )
            inter = inter_fn(
                graph,
                planning_cluster,
                replace(active.inter, threshold=inter_threshold),
            )
            _charge("inter_floorplan", stage_start)
            _check_reachable(inter, planning_cluster, faults)

            # Step 4: communication logic insertion.  Module records from
            # the base synthesis carry over, so only the freshly inserted
            # tx/rx tasks are estimated on each retry — the original tasks
            # keep their profiles across every tightened threshold.
            stage_start = time.perf_counter()
            comm = insert_communication(graph, inter, cluster)
            synthesize(
                comm.graph,
                known_modules=base_report.modules,
                task_timeout_s=active.synthesis_task_timeout_s,
            )
            _charge("comm_insertion", stage_start)

            # Step 5: intra-FPGA floorplanning per device (+ HBM binding).
            stage_start = time.perf_counter()
            intra: dict[int, IntraFloorplan] = {}
            bindings: dict[int, HBMBinding] = {}
            intra_seconds = 0.0
            try:
                for device in sorted(set(comm.assignment.values())):
                    part = cluster.device(device).part
                    local_names = [
                        n for n, d in comm.assignment.items() if d == device
                    ]
                    local = comm.graph.subgraph(
                        local_names, name=f"{graph.name}_F{device}"
                    )
                    intra_config = active.intra
                    if not active.enable_intra_floorplan:
                        intra_config = replace(intra_config, method="naive")
                    else:
                        # The slot threshold tracks how full the device
                        # actually is: a lightly-used device spreads (a
                        # min-wirelength ILP would otherwise pack one slot
                        # to the global ceiling and pay the congestion
                        # penalty for nothing), while a full device gets
                        # bin-packing headroom above the global threshold.
                        # Hot slots are charged by the timing model, not
                        # rejected.
                        device_util = local.total_resources().max_utilization(
                            part.resources
                        )
                        adaptive = min(0.95, max(0.35, device_util + 0.15))
                        intra_config = replace(intra_config, threshold=adaptive)
                    plan = None
                    last_error: InfeasibleError | None = None
                    for attempt_threshold in (intra_config.threshold, 0.95, 1.0):
                        if attempt_threshold < intra_config.threshold:
                            continue
                        try:
                            plan = floorplan_intra(
                                local,
                                part,
                                device_num=device,
                                config=replace(
                                    intra_config, threshold=attempt_threshold
                                ),
                            )
                            break
                        except InfeasibleError as exc:
                            last_error = exc
                    if plan is None:
                        raise last_error  # unroutable even at 100 % slots
                    intra[device] = plan
                    intra_seconds += plan.solve_seconds
                    start = time.perf_counter()
                    bindings[device] = bind_hbm_channels(
                        comm.graph,
                        plan,
                        part,
                        explore=active.enable_hbm_exploration,
                        backend=active.intra.backend,
                    )
                    intra_seconds += time.perf_counter() - start
            except InfeasibleError as exc:
                last_intra_error = exc
                _charge("intra_floorplan", stage_start)
                continue
            _charge("intra_floorplan", stage_start)
            return inter, comm, intra, bindings, intra_seconds
        raise last_intra_error

    inter = comm = None
    intra: dict[int, IntraFloorplan] = {}
    bindings: dict[int, HBMBinding] = {}
    intra_seconds = 0.0
    descent = tiers_from(choose_start_tier(deadline, config))
    achieved_tier = descent[-1]
    try:
        for step, tier in enumerate(descent):
            active = tier_config(config, tier, deadline)
            try:
                inter, comm, intra, bindings, intra_seconds = _plan(active, tier)
                record_tier(tier, ok=True)
                achieved_tier = tier
                break
            except (SolverError, DeadlineExceededError) as exc:
                record_tier(tier, ok=False, error=exc)
                stage_seconds["ladder_steps"] = (
                    stage_seconds.get("ladder_steps", 0.0) + 1.0
                )
                if step == len(descent) - 1:
                    raise
    except DegradedClusterError:
        raise
    except InfeasibleError as exc:
        if fault_active:
            raise DegradedClusterError(
                f"design {graph.name!r} has no feasible plan on the cluster "
                f"surviving scenario {faults.name!r}: {exc}",
                faults=faults.describe_faults(),
            ) from exc
        raise

    # Step 6: interconnect pipelining + cut-set balancing.
    if deadline is not None:
        deadline.check("pipelining")
    stage_start = time.perf_counter()
    pipelines: dict[int, PipelineResult] = {}
    for device, plan in intra.items():
        if config.enable_pipelining:
            result = pipeline_device(
                comm.graph, plan, balance=config.enable_balancing
            )
            if config.enable_balancing:
                verify_balanced(comm.graph, plan, result)
        else:
            result = PipelineResult(device_num=device)
        pipelines[device] = result
    _charge("pipelining", stage_start)

    # Step 7: timing estimation (stands in for bitstream Fmax).
    stage_start = time.perf_counter()
    per_device_freq: dict[int, float] = {}
    for device, plan in intra.items():
        part = cluster.device(device).part
        bump = comm.network_overhead.get(device)
        bump_value = (
            bump.max_utilization(part.resources) if bump is not None else 0.0
        )
        inputs = _device_timing_inputs(
            comm.graph,
            part,
            plan,
            bindings[device],
            bump_value,
            pipelined=config.enable_pipelining,
        )
        per_device_freq[device] = estimate_frequency_mhz(part, inputs, config.timing)

    frequency = min(per_device_freq.values()) if per_device_freq else (
        cluster.device(0).part.max_frequency_mhz
    )
    _charge("timing", stage_start)

    # Solver accounting: which ILP backend actually produced each solve.
    # ``ilp_<backend>`` accumulates solve time per winning backend and
    # ``ilp_fallbacks`` counts scipy failures rescued by branch-and-bound.
    for solver_backend, solve_secs, fell_back in drain_solve_log():
        key = f"ilp_{solver_backend}"
        stage_seconds[key] = stage_seconds.get(key, 0.0) + solve_secs
        if fell_back:
            stage_seconds["ilp_fallbacks"] = (
                stage_seconds.get("ilp_fallbacks", 0.0) + 1.0
            )

    design = CompiledDesign(
        name=graph.name,
        source_graph=graph,
        graph=comm.graph,
        cluster=cluster,
        inter=inter,
        comm=comm,
        intra=intra,
        pipelines=pipelines,
        hbm_bindings=bindings,
        frequency_mhz=frequency,
        per_device_frequency_mhz=per_device_freq,
        inter_floorplan_seconds=inter.solve_seconds,
        intra_floorplan_seconds=intra_seconds,
        flow=flow,
        stage_seconds=stage_seconds,
        diagnostics=diagnostics,
        floorplan_tier=achieved_tier,
    )

    # Post-flight floorplan DRC: audit the artifact we just produced.
    # Findings are attached, never raised — an F-rule error here means a
    # pipeline-stage invariant broke, and the artifact (plus diagnostics)
    # is exactly what's needed to debug it.
    if config.drc != "off":
        stage_start = time.perf_counter()
        from ..check import check_design

        design.diagnostics.extend(check_design(design))
        _charge("drc", stage_start)
    return design


def _single_device_cluster(part: FPGAPart) -> Cluster:
    return make_cluster(1, part=part)


def compile_single_tapa(
    graph: TaskGraph,
    part: FPGAPart = ALVEO_U55C,
    config: CompilerConfig | None = None,
) -> CompiledDesign:
    """The F1-T baseline: TAPA/AutoBridge on a single FPGA.

    Intra-FPGA floorplanning and interconnect pipelining are on; there is
    no inter-FPGA dimension.
    """
    config = config or CompilerConfig()
    return compile_design(graph, _single_device_cluster(part), config, flow="tapa")


def vitis_config(base: CompilerConfig | None = None) -> CompilerConfig:
    """The F1-V knob set: every TAPA-CS optimization switched off."""
    base = base or CompilerConfig()
    return CompilerConfig(
        threshold=base.threshold,
        inter=base.inter,
        intra=base.intra,
        timing=base.timing,
        enable_pipelining=False,
        enable_balancing=False,
        enable_hbm_exploration=False,
        enable_intra_floorplan=False,
        reserve_network_ports=False,
        drc=base.drc,
        synthesis_task_timeout_s=base.synthesis_task_timeout_s,
        ladder_start=base.ladder_start,
    )


def compile_single_vitis(
    graph: TaskGraph,
    part: FPGAPart = ALVEO_U55C,
    config: CompilerConfig | None = None,
) -> CompiledDesign:
    """The F1-V baseline: plain Vitis HLS on a single FPGA.

    No floorplanning (modules packed blindly), no interconnect pipelining,
    and the naive in-order HBM channel binding.
    """
    return compile_design(
        graph, _single_device_cluster(part), vitis_config(config), flow="vitis"
    )
