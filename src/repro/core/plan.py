"""The compiled-design artifact: everything TAPA-CS decides for a design.

This is the output of the seven-step pipeline of Figure 5: the
post-transformation graph, the two floorplanning layers, the pipelining
result, the HBM bindings, the timing estimate, and enough bookkeeping to
drive both the performance simulator and the report benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..cluster.cluster import Cluster
from ..graph.graph import TaskGraph
from ..hls.resource import ResourceVector
from .comm_insertion import CommInsertionResult, InterFpgaStream
from .hbm_binding import HBMBinding
from .inter_floorplan import InterFloorplan
from .intra_floorplan import IntraFloorplan
from .pipelining import PipelineResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..check.diagnostics import Diagnostic


@dataclass(slots=True)
class CompiledDesign:
    """A fully floorplanned, pipelined, timing-estimated design."""

    name: str
    source_graph: TaskGraph
    graph: TaskGraph
    cluster: Cluster
    inter: InterFloorplan
    comm: CommInsertionResult
    intra: dict[int, IntraFloorplan]
    pipelines: dict[int, PipelineResult]
    hbm_bindings: dict[int, HBMBinding]
    frequency_mhz: float
    per_device_frequency_mhz: dict[int, float]
    inter_floorplan_seconds: float  # L1 in the Section 5.6 tables
    intra_floorplan_seconds: float  # L2 in the Section 5.6 tables
    flow: str = "tapa-cs"
    #: Wall-clock seconds per pipeline stage (synthesis, inter_floorplan,
    #: comm_insertion, intra_floorplan, pipelining, timing).
    stage_seconds: dict[str, float] = field(default_factory=dict)
    #: Content fingerprint of the compiler input that produced this
    #: design; set by :func:`repro.perf.cache.cached_compile`.
    fingerprint: str | None = None
    #: Non-fatal design-rule diagnostics gathered during compilation:
    #: graph-DRC warnings (plus errors downgraded by ``drc="warn"``) and
    #: every floorplan-DRC finding.  Round-trips through the disk cache.
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Which quality-ladder tier produced the floorplan ("full" when the
    #: normal flow ran to completion; see :mod:`repro.core.ladder`).
    #: Anything below "full" marks a deadline-degraded artifact, which
    #: the content-addressed cache refuses to store.
    floorplan_tier: str = "full"

    # -- convenience accessors ---------------------------------------------------

    @property
    def num_devices_used(self) -> int:
        return len({d for d in self.comm.assignment.values()})

    @property
    def streams(self) -> list[InterFpgaStream]:
        return self.comm.streams

    @property
    def inter_fpga_volume_bytes(self) -> float:
        """Total inter-FPGA transfer volume (the Tables 4/7 metric)."""
        return self.comm.total_cut_volume_bytes

    def device_tasks(self, device: int) -> list[str]:
        return [n for n, d in self.comm.assignment.items() if d == device]

    def device_resources(self, device: int) -> ResourceVector:
        """Programmable-logic usage of one device, incl. network IPs."""
        total = ResourceVector.zero()
        for name in self.device_tasks(device):
            total = total + self.graph.task(name).require_resources()
        return total + self.comm.network_overhead.get(device, ResourceVector.zero())

    def device_utilization(self, device: int) -> dict[str, float]:
        capacity = self.cluster.device(device).part.resources
        return self.device_resources(device).utilization(capacity)

    def total_pipeline_registers(self) -> int:
        return sum(p.total_registers for p in self.pipelines.values())

    # -- reporting ------------------------------------------------------------------

    def report(self) -> str:
        """A human-readable multi-line compilation report."""
        lines = [
            f"design {self.name!r} compiled with flow {self.flow!r}",
            f"  devices used: {self.num_devices_used} / {self.cluster.num_devices}"
            f" (topology {self.cluster.topology.name})",
            f"  frequency: {self.frequency_mhz:.0f} MHz"
            f" (per device: "
            + ", ".join(
                f"F{d}={f:.0f}" for d, f in sorted(self.per_device_frequency_mhz.items())
            )
            + ")",
            f"  inter-FPGA streams: {len(self.streams)}"
            f" carrying {self.inter_fpga_volume_bytes / 1e6:.2f} MB",
            f"  pipeline registers inserted: {self.total_pipeline_registers()}",
            f"  floorplan runtime: L1={self.inter_floorplan_seconds:.2f}s"
            f" L2={self.intra_floorplan_seconds:.2f}s",
        ]
        if self.floorplan_tier != "full":
            lines.append(
                f"  floorplan quality tier: {self.floorplan_tier}"
                f" (deadline-degraded)"
            )
        if self.stage_seconds:
            lines.append(
                "  stage breakdown: "
                + " ".join(
                    f"{stage}={seconds:.2f}s"
                    for stage, seconds in self.stage_seconds.items()
                )
            )
        for device in sorted(set(self.comm.assignment.values())):
            part = self.cluster.device(device).part
            used = self.device_resources(device)
            lines.append(f"  FPGA{device}: {used.format(part.resources)}")
        if self.diagnostics:
            by_severity: dict[str, int] = {}
            for diag in self.diagnostics:
                key = diag.severity.value
                by_severity[key] = by_severity.get(key, 0) + 1
            summary = ", ".join(
                f"{count} {severity}(s)"
                for severity, count in sorted(by_severity.items())
            )
            lines.append(f"  design-rule diagnostics: {summary}")
        return "\n".join(lines)
