"""Interconnect pipelining with cut-set latency balancing (Section 4.6).

After intra-FPGA floorplanning, every FIFO that crosses slot boundaries
gets one pipeline register per crossing.  TAPA-CS pipelines *all*
slot-crossing wires conservatively, because each task compiles into an
FSM-controlled module whose handshake timing is hard to predict.

Adding registers to one branch of a fork/join pair but not the other can
unbalance reconvergent paths; while latency-insensitive FIFOs keep the
design *correct* regardless, unbalanced branches throttle throughput (one
branch's tokens arrive late and stall the join).  Cut-set pipelining
[Parhi] restores balance by topping up the shallower branches so all
parallel paths carry equal added latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import PipeliningError
from ..graph.graph import TaskGraph
from .intra_floorplan import IntraFloorplan

#: Cap on enumerated parallel paths per fork/join pair; beyond this the
#: balancer falls back to longest-path analysis only.
MAX_PATHS_PER_PAIR = 200


@dataclass(slots=True)
class PipelineResult:
    """Registers added to each channel of one device's local design.

    ``crossing_stages`` holds the conservative one-register-per-crossing
    insertion; ``balance_stages`` the extra depth added by cut-set
    balancing.  Total added latency on a channel is their sum.
    """

    device_num: int
    crossing_stages: dict[str, int] = field(default_factory=dict)
    balance_stages: dict[str, int] = field(default_factory=dict)
    balanced_pairs: list[tuple[str, str]] = field(default_factory=list)

    def stages(self, channel_name: str) -> int:
        return self.crossing_stages.get(channel_name, 0) + self.balance_stages.get(
            channel_name, 0
        )

    @property
    def total_registers(self) -> int:
        return sum(self.crossing_stages.values()) + sum(self.balance_stages.values())

    @property
    def unpipelined_crossings(self) -> int:
        """Always zero after this pass; kept for baseline comparisons."""
        return 0


def _local_digraph(graph: TaskGraph, placed: set[str]) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(placed)
    for chan in graph.channels():
        if chan.src in placed and chan.dst in placed:
            # Parallel channels collapse to one arc carrying all their names.
            if g.has_edge(chan.src, chan.dst):
                g[chan.src][chan.dst]["channels"].append(chan.name)
            else:
                g.add_edge(chan.src, chan.dst, channels=[chan.name])
    return g


def pipeline_device(
    graph: TaskGraph,
    floorplan: IntraFloorplan,
    balance: bool = True,
) -> PipelineResult:
    """Insert crossing registers and balance reconvergent paths.

    Args:
        graph: the full (post-communication-insertion) design.
        floorplan: the slot placement of this device's tasks.
        balance: apply cut-set balancing (disable to measure the ablation).
    """
    placed = set(floorplan.placement)
    result = PipelineResult(device_num=floorplan.device_num)

    for chan in graph.channels():
        if chan.src in placed and chan.dst in placed:
            crossings = floorplan.crossings(chan.src, chan.dst)
            if crossings > 0:
                result.crossing_stages[chan.name] = crossings

    if not balance:
        return result

    local = _local_digraph(graph, placed)
    if not nx.is_directed_acyclic_graph(local):
        # Cycles (e.g. PageRank's PE<->controller loops) cannot be
        # path-balanced; conservative crossing registers are still safe
        # because every edge is a latency-insensitive FIFO.
        return result

    # Global slack balancing: compute the longest added latency L(n) from
    # the design's sources to every node, then pad each arc (u, v) with
    # ``L(v) - L(u) - latency(u, v)`` registers.  After this, *every* path
    # between any two nodes carries the same added latency, so all
    # reconvergent fork/join pairs are balanced in one pass — the multi-cut
    # generalization of cut-set pipelining.  It can pad arcs that are not
    # on any reconvergent path (extra FIFO slack, never a correctness or
    # throughput problem for latency-insensitive channels).
    def edge_latency(u: str, v: str) -> int:
        return max(result.stages(name) for name in local[u][v]["channels"])

    level: dict[str, int] = {}
    for node in nx.topological_sort(local):
        level[node] = max(
            (level[pred] + edge_latency(pred, node) for pred in local.predecessors(node)),
            default=0,
        )
    for u, v, data in local.edges(data=True):
        slack = level[v] - level[u] - edge_latency(u, v)
        if slack > 0:
            name = data["channels"][0]
            result.balance_stages[name] = result.balance_stages.get(name, 0) + slack

    forks = [n for n in local.nodes if local.out_degree(n) > 1]
    for fork in forks:
        reachable = nx.descendants(local, fork)
        for join in (n for n in reachable if local.in_degree(n) > 1):
            result.balanced_pairs.append((fork, join))

    return result


def verify_balanced(
    graph: TaskGraph,
    floorplan: IntraFloorplan,
    result: PipelineResult,
) -> bool:
    """Check that every reconvergent path pair now has equal latency.

    Uses the level-tightness criterion, which is exact and O(V + E):
    compute the longest added latency L(n) from the sources; if every arc
    (u, v) satisfies ``latency(u, v) == L(v) - L(u)``, then *any* path
    between two nodes a, b has total latency ``L(b) - L(a)``, so all
    parallel paths are balanced.  (Enumerating simple paths explicitly is
    combinatorial on grid-shaped designs like the systolic CNN.)

    Returns True for cyclic local graphs (nothing to verify) and raises
    :class:`PipeliningError` if an imbalance survived.
    """
    placed = set(floorplan.placement)
    local = _local_digraph(graph, placed)
    if not nx.is_directed_acyclic_graph(local):
        return True

    def edge_latency(u: str, v: str) -> int:
        return max(result.stages(name) for name in local[u][v]["channels"])

    level: dict[str, int] = {}
    for node in nx.topological_sort(local):
        level[node] = max(
            (level[pred] + edge_latency(pred, node) for pred in local.predecessors(node)),
            default=0,
        )
    for u, v in local.edges():
        slack = level[v] - level[u] - edge_latency(u, v)
        if slack != 0:
            raise PipeliningError(
                f"arc {u} -> {v} is {slack} register(s) short of its level; "
                "reconvergent paths through it are unbalanced"
            )
    return True
