"""Inter-FPGA communication logic insertion (step 4 of Figure 5).

After the inter-FPGA floorplan, every FIFO whose endpoints landed on
different devices is *cut at the latency-insensitive endpoint*: the
producer keeps writing a local FIFO, a sender task serializes tokens into
AlveoLink, the wire carries them, and a receiver task feeds a local FIFO
on the consumer side.  Latency-insensitive design (Sec. 4.3) guarantees
this transformation cannot change functional behaviour, only timing.

Bookkeeping matters here: each device has a fixed number of QSFP28 ports
(two on the U55C), every *used* port pays the AlveoLink resource overhead
(~2% LUT / ~3% FF / ~2% BRAM, Sec. 5.6), and streams between non-adjacent
devices consume a port toward the first hop of their route.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import Cluster
from ..cluster.links import LinkMedium
from ..errors import CommunicationError
from ..graph.channel import Channel
from ..graph.graph import TaskGraph
from ..graph.task import Task
from ..hls.resource import ResourceVector
from ..network.alveolink import ALVEOLINK, port_overhead
from .inter_floorplan import InterFloorplan

#: Resource footprint of one stream's sender or receiver mux logic.
_ENDPOINT_BASE = ResourceVector(lut=450.0, ff=700.0, bram=2.0)
_ENDPOINT_LUT_PER_BIT = 1.2
_ENDPOINT_FF_PER_BIT = 1.6


@dataclass(frozen=True, slots=True)
class InterFpgaStream:
    """One logical stream crossing the network fabric."""

    name: str
    original_channel: str
    src_device: int
    dst_device: int
    width_bits: int
    tokens: float
    hops: int
    medium: LinkMedium

    @property
    def volume_bytes(self) -> float:
        return self.tokens * self.width_bits / 8.0


@dataclass(slots=True)
class CommInsertionResult:
    """The transformed design plus network accounting."""

    graph: TaskGraph
    assignment: dict[str, int]
    streams: list[InterFpgaStream]
    ports_used: dict[int, int]
    network_overhead: dict[int, ResourceVector]

    @property
    def total_cut_volume_bytes(self) -> float:
        return sum(s.volume_bytes for s in self.streams)


def _endpoint_resources(width_bits: int) -> ResourceVector:
    return _ENDPOINT_BASE + ResourceVector(
        lut=_ENDPOINT_LUT_PER_BIT * width_bits,
        ff=_ENDPOINT_FF_PER_BIT * width_bits,
    )


def insert_communication(
    graph: TaskGraph,
    floorplan: InterFloorplan,
    cluster: Cluster,
) -> CommInsertionResult:
    """Replace each cut FIFO with sender/link/receiver plumbing.

    Returns a *new* graph (the input is not modified) whose extra tasks are
    named ``<channel>__tx`` / ``<channel>__rx``, plus the stream records
    the performance simulator charges for network time.

    Raises:
        CommunicationError: when a device needs more network ports than
            its part provides.
    """
    out = graph.copy()
    assignment = dict(floorplan.assignment)
    streams: list[InterFpgaStream] = []
    # (device, peer-of-first-hop) pairs each occupy one port on `device`.
    port_peers: dict[int, set[int]] = {d: set() for d in range(cluster.num_devices)}

    for chan in list(out.channels()):
        src_dev = assignment[chan.src]
        dst_dev = assignment[chan.dst]
        if src_dev == dst_dev:
            continue
        out.remove_channel(chan.name)

        tx_name = f"{chan.name}__tx"
        rx_name = f"{chan.name}__rx"
        for name in (tx_name, rx_name):
            if out.has_task(name):
                raise CommunicationError(f"name collision inserting {name!r}")
        out.add_task(
            Task(name=tx_name, kind="net_tx", resources=_endpoint_resources(chan.width_bits))
        )
        out.add_task(
            Task(name=rx_name, kind="net_rx", resources=_endpoint_resources(chan.width_bits))
        )
        assignment[tx_name] = src_dev
        assignment[rx_name] = dst_dev

        out.add_channel(
            Channel(
                name=f"{chan.name}__pre",
                alias=chan.name,
                src=chan.src,
                dst=tx_name,
                width_bits=chan.width_bits,
                depth=max(chan.depth, ALVEOLINK.recommended_fifo_depth),
                tokens=chan.tokens,
            )
        )
        out.add_channel(
            Channel(
                name=f"{chan.name}__post",
                alias=chan.name,
                src=rx_name,
                dst=chan.dst,
                width_bits=chan.width_bits,
                depth=max(chan.depth, ALVEOLINK.recommended_fifo_depth),
                tokens=chan.tokens,
            )
        )
        # The wire itself: tx -> rx across the network fabric.  Its
        # endpoints sit on different devices, so it never participates in
        # intra-FPGA floorplanning or pipelining; the simulator charges it
        # with the link model instead.
        out.add_channel(
            Channel(
                name=f"{chan.name}__wire",
                alias=chan.name,
                src=tx_name,
                dst=rx_name,
                width_bits=chan.width_bits,
                depth=max(chan.depth, ALVEOLINK.recommended_fifo_depth),
                tokens=chan.tokens,
            )
        )

        hops = max(1, cluster.topology.dist(src_dev, dst_dev))
        medium = cluster.link_between(src_dev, dst_dev)
        streams.append(
            InterFpgaStream(
                name=f"{chan.name}__wire",
                original_channel=chan.name,
                src_device=src_dev,
                dst_device=dst_dev,
                width_bits=chan.width_bits,
                tokens=chan.tokens,
                hops=hops,
                medium=medium,
            )
        )
        port_peers[src_dev].add(dst_dev)
        port_peers[dst_dev].add(src_dev)

    ports_used: dict[int, int] = {}
    network_overhead: dict[int, ResourceVector] = {}
    for dev, peers in port_peers.items():
        part = cluster.device(dev).part
        needed = len(peers)
        if needed > part.num_qsfp_ports:
            # Non-adjacent peers share ports by routing through neighbours;
            # only direct topology neighbours genuinely need distinct ports.
            direct = {p for p in peers if cluster.topology.dist(dev, p) == 1}
            needed = min(max(len(direct), 1), part.num_qsfp_ports)
            if len(direct) > part.num_qsfp_ports:
                raise CommunicationError(
                    f"device {dev} has {len(direct)} direct peers but only "
                    f"{part.num_qsfp_ports} QSFP ports"
                )
        ports_used[dev] = needed if peers else 0
        network_overhead[dev] = port_overhead(part) * ports_used[dev]

    return CommInsertionResult(
        graph=out,
        assignment=assignment,
        streams=streams,
        ports_used=ports_used,
        network_overhead=network_overhead,
    )
