"""Inter-FPGA floorplanning (step 3 of Figure 5, formulation of Sec. 4.3).

Given the synthesized task graph, the cluster (devices + topology + link
media), and the utilization threshold T, assign every task to an FPGA so
that the topology-weighted communication cost

    sum_e  width(e) * dist(F_src, F_dst) * lambda          (Eq. 2)

is minimized subject to the per-device, per-resource capacity constraints
(Eq. 1).  Three methods are provided:

* ``"ilp"``     — the exact K-way assignment ILP with linearized products
  (this is the paper's formulation, solved by Gurobi there and HiGHS here);
* ``"bisect"``  — recursive two-way ILP bisection over contiguous device
  ranges, which scales to very large designs;
* ``"greedy"``  — a topology-aware first-fit + refinement heuristic, kept
  as the ablation baseline the paper argues ILP beats.

``"auto"`` picks ``"ilp"`` up to a size cutoff and ``"bisect"`` beyond it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..cluster.cluster import Cluster
from ..errors import FloorplanError, InfeasibleError
from ..graph.analysis import bfs_depth
from ..graph.channel import Channel
from ..graph.graph import TaskGraph
from ..hls.resource import RESOURCE_KINDS, ResourceVector, total_resources
from ..ilp import Model, solve, sum_expr
from .bipartition import BipartitionSpec, bipartition

#: Above this many task*device products, "auto" switches from the exact
#: assignment ILP to recursive bisection (symmetric designs make the
#: direct assignment ILP needlessly slow well before it becomes large).
AUTO_ILP_CUTOFF = 256


@dataclass(slots=True)
class InterFloorplanConfig:
    """Knobs for the inter-FPGA floorplanner."""

    threshold: float = 0.7
    method: str = "auto"  # "auto" | "ilp" | "bisect" | "greedy"
    backend: str = "scipy"
    time_limit: float | None = 30.0
    #: When True, the distance term uses the real topology (Eq. 3 etc.);
    #: when False every distinct device pair costs 1 (the ablation that
    #: shows why topology-awareness matters beyond two FPGAs).
    topology_aware: bool = True
    #: Compute-load balancing (the Section 4.1 goal): every device must
    #: carry at least ``(1 - balance_tolerance)`` of its fair share of the
    #: design's binding resource.  Only engaged for designs big enough to
    #: genuinely need the cluster (>= 20% cluster utilization) so that a
    #: small design still collapses onto one device, as Section 4.3's
    #: on-chip-preference discussion requires.  ``None`` disables.
    balance_tolerance: float | None = 0.6


@dataclass(slots=True)
class InterFloorplan:
    """The inter-FPGA assignment and its quality metrics."""

    assignment: dict[str, int]
    comm_cost: float
    cut_channels: list[Channel]
    cut_volume_bytes: float
    per_device: dict[int, ResourceVector]
    solve_seconds: float
    method: str

    def tasks_on(self, device: int) -> list[str]:
        return [name for name, dev in self.assignment.items() if dev == device]

    def devices_used(self) -> list[int]:
        return sorted(set(self.assignment.values()))


def _alive_devices(cluster: Cluster) -> list[int]:
    """Devices with any usable resources (fault masking zeroes the rest)."""
    return [
        d
        for d in range(cluster.num_devices)
        if sum(cluster.device(d).usable_resources.as_tuple()) > 0
    ]


def _balance_plan(
    graph: TaskGraph, cluster: Cluster, config: InterFloorplanConfig
) -> tuple[str, float] | None:
    """Pick the binding resource kind and per-device floor, or None.

    The fair share divides over *alive* devices only: a fault-masked
    device has zero capacity, and giving it a balance floor would make
    every plan infeasible by construction.
    """
    if config.balance_tolerance is None:
        return None
    alive = _alive_devices(cluster)
    if not alive:
        return None
    totals = {
        kind: sum(t.require_resources()[kind] for t in graph.tasks())
        for kind in RESOURCE_KINDS
    }
    capacities = {
        kind: sum(cluster.device(d).usable_resources[kind] for d in alive)
        for kind in RESOURCE_KINDS
    }
    ratios = {
        kind: (totals[kind] / capacities[kind]) if capacities[kind] else 0.0
        for kind in RESOURCE_KINDS
    }
    binding_kind = max(ratios, key=ratios.get)
    if ratios[binding_kind] < 0.20:
        return None  # small design: let it collapse onto one device
    fair = totals[binding_kind] / len(alive)
    return binding_kind, fair * (1.0 - config.balance_tolerance)


def _pair_cost(cluster: Cluster, a: int, b: int, topology_aware: bool) -> float:
    if a == b:
        return 0.0
    if topology_aware:
        return cluster.comm_cost(a, b)
    return cluster.link_between(a, b).cost_scale


def _finalize(
    graph: TaskGraph,
    cluster: Cluster,
    assignment: dict[str, int],
    solve_seconds: float,
    method: str,
    config: InterFloorplanConfig,
) -> InterFloorplan:
    comm_cost = 0.0
    cut: list[Channel] = []
    for chan in graph.channels():
        a, b = assignment[chan.src], assignment[chan.dst]
        if a != b:
            cut.append(chan)
            comm_cost += chan.width_bits * _pair_cost(cluster, a, b, config.topology_aware)
    per_device: dict[int, ResourceVector] = {
        d: ResourceVector.zero() for d in range(cluster.num_devices)
    }
    for name, dev in assignment.items():
        per_device[dev] = per_device[dev] + graph.task(name).require_resources()
    for dev, used in per_device.items():
        capacity = cluster.device(dev).usable_resources
        if not used.fits_within(capacity, threshold=config.threshold):
            raise FloorplanError(
                f"internal error: device {dev} over threshold after {method} "
                f"floorplan ({used.format(capacity)})"
            )
    return InterFloorplan(
        assignment=assignment,
        comm_cost=comm_cost,
        cut_channels=cut,
        cut_volume_bytes=sum(c.volume_bytes for c in cut),
        per_device=per_device,
        solve_seconds=solve_seconds,
        method=method,
    )


def finalize_assignment(
    graph: TaskGraph,
    cluster: Cluster,
    assignment: dict[str, int],
    solve_seconds: float,
    method: str,
    config: InterFloorplanConfig,
) -> InterFloorplan:
    """Package an externally-computed assignment as an :class:`InterFloorplan`.

    Used by the quality ladder's coarsened-graph tier, which solves the
    ILP on a coarse graph and projects the assignment back to the real
    task names; the capacity audit and cut metrics are recomputed here on
    the *original* graph, so a projection that somehow over-packs a
    device fails loudly.
    """
    return _finalize(graph, cluster, assignment, solve_seconds, method, config)


# ---------------------------------------------------------------------------
# Exact K-way assignment ILP (the paper's formulation)
# ---------------------------------------------------------------------------


def _floorplan_ilp(
    graph: TaskGraph, cluster: Cluster, config: InterFloorplanConfig
) -> dict[str, int]:
    model = Model(f"inter_{graph.name}")
    devices = range(cluster.num_devices)

    x = {
        (task.name, d): model.binary_var(f"x_{task.name}_{d}")
        for task in graph.tasks()
        for d in devices
    }
    # Every task lands on exactly one device.
    for task in graph.tasks():
        model.add_constraint(
            sum_expr(x[task.name, d] for d in devices) == 1,
            name=f"assign_{task.name}",
        )
    # Eq. 1: per-device, per-kind capacity at threshold T.
    for d in devices:
        capacity = cluster.device(d).usable_resources
        for kind in RESOURCE_KINDS:
            model.add_constraint(
                sum_expr(
                    task.require_resources()[kind] * x[task.name, d]
                    for task in graph.tasks()
                )
                <= config.threshold * capacity[kind],
                name=f"cap_{d}_{kind}",
            )

    # Compute-load balancing: every *alive* device carries a floor share
    # (a fault-masked device has zero capacity and gets no floor).
    balance = _balance_plan(graph, cluster, config)
    if balance is not None:
        kind, floor = balance
        for d in _alive_devices(cluster):
            model.add_constraint(
                sum_expr(
                    task.require_resources()[kind] * x[task.name, d]
                    for task in graph.tasks()
                )
                >= floor,
                name=f"balance_{d}",
            )

    # HBM-port budget: a device serves at most as many AXI ports as it
    # has HBM pseudo-channels (the constraint that forces memory-bound
    # designs like the wide-port stencil and KNN to span devices).
    for d in devices:
        budget = cluster.device(d).part.num_hbm_channels
        port_terms = [
            len(task.hbm_ports) * x[task.name, d]
            for task in graph.tasks()
            if task.hbm_ports
        ]
        if port_terms:
            model.add_constraint(
                sum_expr(port_terms) <= budget, name=f"hbm_ports_{d}"
            )

    # Eq. 2: linearized communication cost over unordered device pairs.
    cost_terms = []
    pairs = [
        (a, b)
        for a in devices
        for b in devices
        if a < b and _pair_cost(cluster, a, b, config.topology_aware) > 0
    ]
    for chan in graph.channels():
        for a, b in pairs:
            cost = chan.width_bits * _pair_cost(cluster, a, b, config.topology_aware)
            y = model.continuous_var(f"y_{chan.name}_{a}_{b}", lower=0.0, upper=1.0)
            model.add_constraint(y >= x[chan.src, a] + x[chan.dst, b] - 1)
            model.add_constraint(y >= x[chan.src, b] + x[chan.dst, a] - 1)
            cost_terms.append(cost * y)
    model.minimize(sum_expr(cost_terms))

    solution = solve(model, backend=config.backend, time_limit=config.time_limit)
    if not solution.is_usable:
        raise InfeasibleError(
            f"design {graph.name!r} does not fit on {cluster.num_devices} device(s) "
            f"at threshold {config.threshold}"
        )
    assignment: dict[str, int] = {}
    for task in graph.tasks():
        for d in devices:
            if solution[x[task.name, d]] > 0.5:
                assignment[task.name] = d
                break
        else:
            raise FloorplanError(f"solver left task {task.name!r} unassigned")
    return assignment


# ---------------------------------------------------------------------------
# Recursive bisection over contiguous device ranges
# ---------------------------------------------------------------------------


def _range_capacity(cluster: Cluster, devices: list[int]) -> ResourceVector:
    return total_resources([cluster.device(d).usable_resources for d in devices])


def _floorplan_bisect(
    graph: TaskGraph, cluster: Cluster, config: InterFloorplanConfig
) -> dict[str, int]:
    assignment: dict[str, int] = {}
    balance = _balance_plan(graph, cluster, config)

    def recurse(sub: TaskGraph, devices: list[int]) -> None:
        if len(devices) == 1:
            target = devices[0]
            capacity = cluster.device(target).usable_resources
            used = total_resources([t.require_resources() for t in sub.tasks()])
            if not used.fits_within(capacity, threshold=config.threshold):
                raise InfeasibleError(
                    f"bisection leaves device {target} over threshold"
                )
            ports = sum(len(t.hbm_ports) for t in sub.tasks())
            if ports > cluster.device(target).part.num_hbm_channels:
                raise InfeasibleError(
                    f"bisection leaves device {target} with {ports} HBM ports "
                    f"but only {cluster.device(target).part.num_hbm_channels} channels"
                )
            for task in sub.tasks():
                assignment[task.name] = target
            return
        mid = len(devices) // 2
        left, right = devices[:mid], devices[mid:]
        alive = set(_alive_devices(cluster))
        alive_left = len([d for d in left if d in alive])
        alive_right = len([d for d in right if d in alive])
        # As in the intra-FPGA bisection: a min-cut split at the full
        # threshold can be too imbalanced for the child levels to pack, so
        # on child failure this level retries with tighter balance.
        last_error: InfeasibleError | None = None
        for attempt_threshold in (
            config.threshold,
            config.threshold * 0.9,
            config.threshold * 0.8,
        ):
            try:
                result = bipartition(
                    BipartitionSpec(
                        graph=sub,
                        capacity_left=_range_capacity(cluster, left),
                        capacity_right=_range_capacity(cluster, right),
                        threshold=attempt_threshold,
                        backend=config.backend,
                        time_limit=config.time_limit,
                        hbm_ports_left=sum(
                            cluster.device(d).part.num_hbm_channels for d in left
                        ),
                        hbm_ports_right=sum(
                            cluster.device(d).part.num_hbm_channels for d in right
                        ),
                        balance_kind=balance[0] if balance else None,
                        # The balance floors relax along the retry ladder:
                        # a tighter capacity threshold combined with rigid
                        # floors would squeeze the feasible region empty.
                        balance_min_left=(
                            balance[1]
                            * alive_left
                            * (attempt_threshold / config.threshold)
                            if balance
                            else 0.0
                        ),
                        balance_min_right=(
                            balance[1]
                            * alive_right
                            * (attempt_threshold / config.threshold)
                            if balance
                            else 0.0
                        ),
                    )
                )
                saved = dict(assignment)
                try:
                    if result.tasks_on(0):
                        recurse(
                            sub.subgraph(result.tasks_on(0), name=f"{sub.name}_l"),
                            left,
                        )
                    if result.tasks_on(1):
                        recurse(
                            sub.subgraph(result.tasks_on(1), name=f"{sub.name}_r"),
                            right,
                        )
                    return
                except InfeasibleError as exc:
                    assignment.clear()
                    assignment.update(saved)
                    last_error = exc
            except InfeasibleError as exc:
                last_error = exc
        raise last_error

    recurse(graph, list(range(cluster.num_devices)))
    missing = set(graph.task_names()) - set(assignment)
    if missing:
        raise FloorplanError(f"bisection left tasks unassigned: {sorted(missing)}")
    return assignment


# ---------------------------------------------------------------------------
# Greedy heuristic (ablation baseline)
# ---------------------------------------------------------------------------


def _floorplan_greedy(
    graph: TaskGraph, cluster: Cluster, config: InterFloorplanConfig
) -> dict[str, int]:
    depth = bfs_depth(graph)
    order = sorted(graph.task_names(), key=lambda n: (depth[n], n))
    used = {d: ResourceVector.zero() for d in range(cluster.num_devices)}
    ports_used = {d: 0 for d in range(cluster.num_devices)}
    assignment: dict[str, int] = {}

    def placement_cost(name: str, device: int) -> float:
        cost = 0.0
        for chan in graph.in_channels(name) + graph.out_channels(name):
            other = chan.src if chan.dst == name else chan.dst
            if other in assignment:
                cost += chan.width_bits * _pair_cost(
                    cluster, assignment[other], device, config.topology_aware
                )
        return cost

    for name in order:
        area = graph.task(name).require_resources()
        task_ports = len(graph.task(name).hbm_ports)
        best_device, best_cost = None, float("inf")
        for d in range(cluster.num_devices):
            capacity = cluster.device(d).usable_resources
            if not (used[d] + area).fits_within(capacity, threshold=config.threshold):
                continue
            if ports_used[d] + task_ports > cluster.device(d).part.num_hbm_channels:
                continue
            cost = placement_cost(name, d)
            # Light load-balancing tie-break: prefer emptier devices.
            cost += 1e-6 * used[d].lut
            if cost < best_cost:
                best_device, best_cost = d, cost
        if best_device is None:
            raise InfeasibleError(
                f"greedy floorplan cannot place task {name!r} on any device"
            )
        assignment[name] = best_device
        used[best_device] = used[best_device] + area
        ports_used[best_device] += task_ports

    # One pass of single-task refinement.
    improved = True
    passes = 0
    while improved and passes < 3:
        improved = False
        passes += 1
        for name in order:
            current = assignment[name]
            area = graph.task(name).require_resources()
            current_cost = placement_cost(name, current)
            task_ports = len(graph.task(name).hbm_ports)
            for d in range(cluster.num_devices):
                if d == current:
                    continue
                capacity = cluster.device(d).usable_resources
                if not (used[d] + area).fits_within(capacity, threshold=config.threshold):
                    continue
                if ports_used[d] + task_ports > cluster.device(d).part.num_hbm_channels:
                    continue
                del assignment[name]
                new_cost = placement_cost(name, d)
                assignment[name] = current
                if new_cost < current_cost - 1e-9:
                    used[current] = used[current] - area
                    used[d] = used[d] + area
                    ports_used[current] -= task_ports
                    ports_used[d] += task_ports
                    assignment[name] = d
                    improved = True
                    break
    return assignment


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def floorplan_inter(
    graph: TaskGraph,
    cluster: Cluster,
    config: InterFloorplanConfig | None = None,
) -> InterFloorplan:
    """Assign every task of ``graph`` to a device of ``cluster``.

    Raises:
        InfeasibleError: when the design cannot fit the cluster at the
            configured threshold.
    """
    config = config or InterFloorplanConfig()
    for task in graph.tasks():
        task.require_resources()  # fail fast with a clear message

    method = config.method
    if method == "auto":
        size = graph.num_tasks * cluster.num_devices
        method = "ilp" if size <= AUTO_ILP_CUTOFF else "bisect"

    start = time.perf_counter()
    if cluster.num_devices == 1:
        used = total_resources([t.require_resources() for t in graph.tasks()])
        capacity = cluster.device(0).usable_resources
        if not used.fits_within(capacity, threshold=config.threshold):
            raise InfeasibleError(
                f"design {graph.name!r} does not fit a single device at "
                f"threshold {config.threshold}: {used.format(capacity)}"
            )
        ports = sum(len(t.hbm_ports) for t in graph.tasks())
        budget = cluster.device(0).part.num_hbm_channels
        if budget and ports > budget:
            raise InfeasibleError(
                f"design {graph.name!r} needs {ports} HBM ports but a single "
                f"{cluster.device(0).part.name} exposes {budget} channels"
            )
        assignment = {name: 0 for name in graph.task_names()}
    elif method == "ilp":
        assignment = _floorplan_ilp(graph, cluster, config)
    elif method == "bisect":
        assignment = _floorplan_bisect(graph, cluster, config)
    elif method == "greedy":
        assignment = _floorplan_greedy(graph, cluster, config)
    else:
        raise FloorplanError(f"unknown inter-FPGA method {config.method!r}")
    elapsed = time.perf_counter() - start
    return _finalize(graph, cluster, assignment, elapsed, method, config)
