"""The TAPA-CS core: floorplanning, communication insertion, pipelining,
and the compiler driver tying the seven steps of Figure 5 together."""

from .bipartition import BipartitionResult, BipartitionSpec, bipartition
from .constraints import DeviceConstraints, emit_constraints, write_constraints
from .comm_insertion import (
    CommInsertionResult,
    InterFpgaStream,
    insert_communication,
)
from .compiler import (
    CompilerConfig,
    compile_design,
    compile_single_tapa,
    compile_single_vitis,
)
from .hbm_binding import HBMBinding, PortDemand, bind_hbm_channels
from .inter_floorplan import (
    InterFloorplan,
    InterFloorplanConfig,
    floorplan_inter,
)
from .intra_floorplan import (
    IntraFloorplan,
    IntraFloorplanConfig,
    floorplan_intra,
)
from .pipelining import PipelineResult, pipeline_device, verify_balanced
from .plan import CompiledDesign

__all__ = [
    "BipartitionResult",
    "BipartitionSpec",
    "CommInsertionResult",
    "CompiledDesign",
    "DeviceConstraints",
    "CompilerConfig",
    "HBMBinding",
    "InterFloorplan",
    "InterFloorplanConfig",
    "InterFpgaStream",
    "IntraFloorplan",
    "IntraFloorplanConfig",
    "PipelineResult",
    "PortDemand",
    "bind_hbm_channels",
    "bipartition",
    "compile_design",
    "emit_constraints",
    "compile_single_tapa",
    "compile_single_vitis",
    "floorplan_inter",
    "floorplan_intra",
    "insert_communication",
    "pipeline_device",
    "verify_balanced",
    "write_constraints",
]
