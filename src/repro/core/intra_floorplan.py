"""Intra-FPGA floorplanning (step 5 of Figure 5, formulation of Sec. 4.5).

Each FPGA is presented to the floorplanner as a grid of slots delimited by
die boundaries and the hard-IP column (the U55C is a 3-row x 2-column
grid).  Every task assigned to the device must land in one slot, keeping
each slot under the utilization threshold and minimizing the Manhattan
wirelength of Eq. 4:

    sum_e width(e) * (|row_u - row_v| + |col_u - col_v|)

Tasks with HBM ports are pulled toward the HBM-adjacent row by a soft
affinity (strong but not a hard pin: the paper's binding explorer trades
bottom-die congestion against HBM proximity, which is exactly what a soft
cost expresses).

Two methods: the direct assignment ILP — the Manhattan distance is linear
in the assignment binaries, so it needs only two auxiliary continuous
variables per edge — and the paper's recursive two-way scheme, which
splits the slot grid along its longest axis until single slots remain.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from ..devices.fpga import FPGAPart, Slot
from ..errors import FloorplanError, InfeasibleError
from ..graph.graph import TaskGraph
from ..hls.resource import RESOURCE_KINDS, ResourceVector, total_resources
from ..ilp import Model, solve, sum_expr
from .bipartition import BipartitionSpec, bipartition

#: Above this many task*slot products, "auto" switches to the paper's
#: recursive two-way scheme, which scales far better on symmetric designs.
AUTO_ILP_CUTOFF = 120

#: Soft cost (in Eq. 4 width units) pulling each HBM port toward the HBM row.
HBM_AFFINITY_WEIGHT = 256.0


@dataclass(slots=True)
class IntraFloorplanConfig:
    """Knobs for the intra-FPGA floorplanner."""

    threshold: float = 0.7
    method: str = "auto"  # "auto" | "ilp" | "bisect" | "greedy" | "naive"
    backend: str = "scipy"
    time_limit: float | None = 15.0
    hbm_affinity: float = HBM_AFFINITY_WEIGHT


@dataclass(slots=True)
class IntraFloorplan:
    """Task -> slot placement for one device."""

    device_num: int
    placement: dict[str, Slot]
    wirelength: float
    per_slot: dict[tuple[int, int], ResourceVector]
    solve_seconds: float
    method: str

    def slot_of(self, task_name: str) -> Slot:
        try:
            return self.placement[task_name]
        except KeyError:
            raise FloorplanError(f"task {task_name!r} not placed on device "
                                 f"{self.device_num}") from None

    def crossings(self, src: str, dst: str) -> int:
        """Slot crossings between two placed tasks (Manhattan distance)."""
        return self.slot_of(src).distance_to(self.slot_of(dst))

    def max_slot_utilization(
        self,
        part: FPGAPart,
        kinds: tuple[str, ...] = ("lut", "ff", "bram", "uram"),
    ) -> float:
        """The most congested slot's utilization ratio.

        By default DSP is excluded: DSP blocks live in dedicated hard
        columns and dense DSP packing does not stretch fabric routing the
        way LUT/FF/BRAM pressure does (it limits *routability*, which the
        capacity constraints handle, not achievable frequency).
        """
        cap = part.slot_capacity
        worst = 0.0
        for used in self.per_slot.values():
            ratios = used.utilization(cap)
            worst = max(worst, max(ratios[k] for k in kinds))
        return worst


def _wirelength(graph: TaskGraph, placement: dict[str, Slot]) -> float:
    total = 0.0
    for chan in graph.channels():
        if chan.src in placement and chan.dst in placement:
            total += chan.width_bits * placement[chan.src].distance_to(
                placement[chan.dst]
            )
    return total


def _per_slot_usage(
    graph: TaskGraph, placement: dict[str, Slot]
) -> dict[tuple[int, int], ResourceVector]:
    usage: dict[tuple[int, int], ResourceVector] = {}
    for name, slot in placement.items():
        key = (slot.row, slot.col)
        usage[key] = usage.get(key, ResourceVector.zero()) + graph.task(
            name
        ).require_resources()
    return usage


# ---------------------------------------------------------------------------
# Direct assignment ILP
# ---------------------------------------------------------------------------


def _floorplan_ilp(
    graph: TaskGraph, part: FPGAPart, config: IntraFloorplanConfig
) -> dict[str, Slot]:
    slots = part.slots()
    model = Model(f"intra_{graph.name}")

    x = {
        (task.name, i): model.binary_var(f"x_{task.name}_{i}")
        for task in graph.tasks()
        for i in range(len(slots))
    }
    for task in graph.tasks():
        model.add_constraint(
            sum_expr(x[task.name, i] for i in range(len(slots))) == 1
        )
    cap = part.slot_capacity
    for i in range(len(slots)):
        for kind in RESOURCE_KINDS:
            model.add_constraint(
                sum_expr(
                    task.require_resources()[kind] * x[task.name, i]
                    for task in graph.tasks()
                )
                <= config.threshold * cap[kind]
            )

    def row_expr(name: str):
        return sum_expr(slots[i].row * x[name, i] for i in range(len(slots)))

    def col_expr(name: str):
        return sum_expr(slots[i].col * x[name, i] for i in range(len(slots)))

    cost_terms = []
    max_row = max(s.row for s in slots)
    max_col = max(s.col for s in slots)
    for chan in graph.channels():
        dr = model.continuous_var(f"dr_{chan.name}", lower=0.0, upper=float(max_row))
        dc = model.continuous_var(f"dc_{chan.name}", lower=0.0, upper=float(max_col))
        model.add_constraint(dr >= row_expr(chan.src) - row_expr(chan.dst))
        model.add_constraint(dr >= row_expr(chan.dst) - row_expr(chan.src))
        model.add_constraint(dc >= col_expr(chan.src) - col_expr(chan.dst))
        model.add_constraint(dc >= col_expr(chan.dst) - col_expr(chan.src))
        cost_terms.append(chan.width_bits * (dr + dc))

    # HBM affinity: pay per row of distance from the HBM row.
    for task in graph.tasks():
        if not task.uses_hbm:
            continue
        weight = config.hbm_affinity * len(task.hbm_ports)
        dist_expr = sum_expr(
            abs(slots[i].row - part.hbm_row) * x[task.name, i]
            for i in range(len(slots))
        )
        cost_terms.append(weight * dist_expr)

    model.minimize(sum_expr(cost_terms))
    solution = solve(model, backend=config.backend, time_limit=config.time_limit)
    if not solution.is_usable:
        raise InfeasibleError(
            f"design {graph.name!r} does not fit the {part.name} slot grid at "
            f"threshold {config.threshold}"
        )
    placement: dict[str, Slot] = {}
    for task in graph.tasks():
        for i in range(len(slots)):
            if solution[x[task.name, i]] > 0.5:
                placement[task.name] = slots[i]
                break
        else:
            raise FloorplanError(f"solver left task {task.name!r} unplaced")
    return placement


# ---------------------------------------------------------------------------
# Recursive two-way partitioning over the slot grid (the paper's scheme)
# ---------------------------------------------------------------------------


def _floorplan_bisect(
    graph: TaskGraph, part: FPGAPart, config: IntraFloorplanConfig
) -> dict[str, Slot]:
    placement: dict[str, Slot] = {}

    def recurse(sub: TaskGraph, slots: list[Slot], threshold: float) -> None:
        if not sub.num_tasks:
            return
        if len(slots) == 1:
            target = slots[0]
            used = total_resources([t.require_resources() for t in sub.tasks()])
            if not used.fits_within(target.capacity, threshold=config.threshold):
                raise InfeasibleError(
                    f"bisection leaves slot {target.name} over threshold"
                )
            for task in sub.tasks():
                placement[task.name] = target
            return
        rows = {s.row for s in slots}
        cols = {s.col for s in slots}
        # Split along the longer axis, matching the paper's top-down halving.
        if len(rows) >= len(cols):
            cut = sorted(rows)[len(rows) // 2]
            left = [s for s in slots if s.row < cut]
            right = [s for s in slots if s.row >= cut]
            axis = "row"
        else:
            cut = sorted(cols)[len(cols) // 2]
            left = [s for s in slots if s.col < cut]
            right = [s for s in slots if s.col >= cut]
            axis = "col"

        affinity: dict[str, tuple[int, float]] = {}
        if axis == "row":
            # Pull HBM tasks toward whichever half contains the HBM row.
            hbm_side = 0 if any(s.row == part.hbm_row for s in left) else 1
            hbm_in_range = any(s.row == part.hbm_row for s in left + right)
            if hbm_in_range:
                for task in sub.tasks():
                    if task.uses_hbm:
                        affinity[task.name] = (
                            hbm_side,
                            config.hbm_affinity * len(task.hbm_ports),
                        )

        # A min-cut split at a loose threshold can be so imbalanced that a
        # child level cannot bin-pack its share.  When a child fails, redo
        # this level with a tighter (more balance-forcing) threshold: the
        # extra cut width costs wirelength but restores packability.
        last_error: InfeasibleError | None = None
        for attempt_threshold in (threshold, threshold * 0.9, threshold * 0.8):
            try:
                result = bipartition(
                    BipartitionSpec(
                        graph=sub,
                        capacity_left=total_resources([s.capacity for s in left]),
                        capacity_right=total_resources([s.capacity for s in right]),
                        threshold=attempt_threshold,
                        affinity=affinity,
                        backend=config.backend,
                        time_limit=config.time_limit,
                    )
                )
                saved = dict(placement)
                try:
                    recurse(sub.subgraph(result.tasks_on(0), name=f"{sub.name}_l"),
                            left, threshold)
                    recurse(sub.subgraph(result.tasks_on(1), name=f"{sub.name}_r"),
                            right, threshold)
                    return
                except InfeasibleError as exc:
                    placement.clear()
                    placement.update(saved)
                    last_error = exc
            except InfeasibleError as exc:
                last_error = exc
        raise last_error

    recurse(graph, part.slots(), config.threshold)
    missing = set(graph.task_names()) - set(placement)
    if missing:
        raise FloorplanError(f"bisection left tasks unplaced: {sorted(missing)}")
    return placement


# ---------------------------------------------------------------------------
# Naive packing (models a placer with no floorplan guidance)
# ---------------------------------------------------------------------------


def _floorplan_naive(
    graph: TaskGraph, part: FPGAPart, config: IntraFloorplanConfig
) -> dict[str, Slot]:
    """First-fit-decreasing area packing, blind to connectivity.

    This models what the conventional flow's placer effectively does when
    HLS has no floorplan information: modules end up compact in area but
    arbitrarily far from the modules they talk to.  Slots are filled up to
    their full capacity (not the floorplanner's safety threshold), which
    is exactly the congestion the paper blames for low Vitis frequencies.
    Slots fill in serpentine order (adjacent slot to adjacent slot), the
    way an area-driven placer grows a compact blob.
    """
    slots = part.slots()
    slots = sorted(
        slots,
        key=lambda s: (s.row, s.col if s.row % 2 == 0 else -s.col),
    )
    order = sorted(
        graph.task_names(),
        key=lambda n: -graph.task(n).require_resources().lut,
    )
    # A real placer balances: it will not pack one region solid while the
    # rest of the chip sits empty.  Fill each slot only up to a comfort
    # level tied to the design's overall utilization, falling back to a
    # full pack when the comfort level cannot fit the design.
    design_util = total_resources(
        [t.require_resources() for t in graph.tasks()]
    ).max_utilization(part.resources)
    comfort = min(1.0, max(0.4, design_util + 0.15))
    for fill_cap in (comfort, 1.0):
        remaining = [slot.capacity * fill_cap for slot in slots]
        placement: dict[str, Slot] = {}
        for name in order:
            area = graph.task(name).require_resources()
            for i, slot in enumerate(slots):
                if area.fits_within(remaining[i], threshold=1.0):
                    placement[name] = slot
                    remaining[i] = remaining[i] - area
                    break
            else:
                break  # this fill cap fails; try the next
        else:
            return placement
    raise InfeasibleError(
        f"naive packing cannot fit the design on {part.name}"
    )


# ---------------------------------------------------------------------------
# Greedy placement (deadline-ladder fallback: ILP-free but threshold-aware)
# ---------------------------------------------------------------------------


def _floorplan_greedy(
    graph: TaskGraph, part: FPGAPart, config: IntraFloorplanConfig
) -> dict[str, Slot]:
    """Connectivity-ordered first-fit that respects the slot threshold.

    The deadline ladder's last resort: no ILP, no recursion, one linear
    pass.  Unlike :func:`_floorplan_naive` (which deliberately models a
    floorplan-blind placer), this keeps the two properties that make a
    floorplan a floorplan — slots stay under the utilization threshold,
    and each task is placed in whichever feasible slot minimizes the
    width-weighted distance to its already-placed neighbors.  Quality is
    worse than the ILP (no lookahead) but the plan is DRC-clean and the
    cost is microseconds.

    Placement order is a BFS over the channel graph seeded from the
    largest task, so neighbors are placed near each other; HBM tasks pay
    the same soft affinity toward the HBM row the ILP uses.  If the
    configured threshold cannot pack the design the pass retries at 0.95
    and 1.0 — full physical capacity — before declaring infeasibility.
    """
    slots = part.slots()
    neighbors: dict[str, list[tuple[str, float]]] = {
        name: [] for name in graph.task_names()
    }
    for chan in graph.channels():
        if chan.src == chan.dst:
            continue
        neighbors[chan.src].append((chan.dst, float(chan.width_bits)))
        neighbors[chan.dst].append((chan.src, float(chan.width_bits)))

    # BFS from the heaviest task, tie-broken toward wide channels, so the
    # order visits connected components cluster-by-cluster.
    def area(name: str) -> float:
        return graph.task(name).require_resources().lut

    order: list[str] = []
    seen: set[str] = set()
    for seed in sorted(graph.task_names(), key=lambda n: (-area(n), n)):
        if seed in seen:
            continue
        frontier = deque([seed])
        seen.add(seed)
        while frontier:
            name = frontier.popleft()
            order.append(name)
            for nbr, _width in sorted(
                neighbors[name], key=lambda p: (-p[1], p[0])
            ):
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)

    thresholds = [config.threshold]
    for relaxed in (0.95, 1.0):
        if relaxed > thresholds[-1]:
            thresholds.append(relaxed)
    for threshold in thresholds:
        remaining = [slot.capacity * threshold for slot in slots]
        placement: dict[str, Slot] = {}
        feasible = True
        for name in order:
            need = graph.task(name).require_resources()
            task = graph.task(name)
            best_i: int | None = None
            best_cost = float("inf")
            for i, slot in enumerate(slots):
                if not need.fits_within(remaining[i], threshold=1.0):
                    continue
                cost = sum(
                    width * slot.distance_to(placement[nbr])
                    for nbr, width in neighbors[name]
                    if nbr in placement
                )
                if task.uses_hbm:
                    cost += (
                        config.hbm_affinity
                        * len(task.hbm_ports)
                        * abs(slot.row - part.hbm_row)
                    )
                if cost < best_cost:
                    best_cost = cost
                    best_i = i
            if best_i is None:
                feasible = False
                break
            placement[name] = slots[best_i]
            remaining[best_i] = remaining[best_i] - need
        if feasible:
            return placement
    raise InfeasibleError(
        f"greedy placement cannot fit the design on {part.name} even at "
        f"full slot capacity"
    )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def floorplan_intra(
    graph: TaskGraph,
    part: FPGAPart,
    device_num: int = 0,
    config: IntraFloorplanConfig | None = None,
) -> IntraFloorplan:
    """Place every task of ``graph`` into a slot of ``part``'s grid.

    ``graph`` is typically the induced subgraph of one device's tasks
    (cross-device channels are handled by communication insertion before
    this step, so every channel endpoint is local).
    """
    config = config or IntraFloorplanConfig()
    for task in graph.tasks():
        task.require_resources()

    method = config.method
    if method == "auto":
        size = graph.num_tasks * part.num_slots
        method = "ilp" if size <= AUTO_ILP_CUTOFF else "bisect"

    start = time.perf_counter()
    if graph.num_tasks == 0:
        placement: dict[str, Slot] = {}
    elif method == "ilp":
        placement = _floorplan_ilp(graph, part, config)
    elif method == "bisect":
        placement = _floorplan_bisect(graph, part, config)
    elif method == "greedy":
        placement = _floorplan_greedy(graph, part, config)
    elif method == "naive":
        placement = _floorplan_naive(graph, part, config)
    else:
        raise FloorplanError(f"unknown intra-FPGA method {config.method!r}")
    elapsed = time.perf_counter() - start

    return IntraFloorplan(
        device_num=device_num,
        placement=placement,
        wirelength=_wirelength(graph, placement),
        per_slot=_per_slot_usage(graph, placement),
        solve_seconds=elapsed,
        method=method,
    )
