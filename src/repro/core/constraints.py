"""Step 7: emit floorplan constraints for the vendor CAD stack.

The real TAPA-CS hands its decisions back to Vitis/Vivado as physical
constraints: one pblock per floorplan slot, task cells assigned to their
slot's pblock, HBM channel assignments as connectivity configuration
(``sp`` tags), and the clock target.  This module renders the same
artifacts from a :class:`~repro.core.plan.CompiledDesign` — a Tcl
constraint file and a connectivity ``.cfg`` per device — so the output of
this reproduction is inspectable in exactly the form the paper's flow
produces.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.fpga import FPGAPart
from .plan import CompiledDesign


@dataclass(frozen=True, slots=True)
class DeviceConstraints:
    """Rendered constraint artifacts for one device."""

    device_num: int
    tcl: str
    connectivity_cfg: str


def _pblock_name(row: int, col: int) -> str:
    return f"pblock_X{col}Y{row}"


def _tcl_for_device(design: CompiledDesign, device: int, part: FPGAPart) -> str:
    plan = design.intra[device]
    lines = [
        f"# TAPA-CS floorplan constraints for FPGA{device} ({part.name})",
        f"# design: {design.name}   flow: {design.flow}",
        f"# target clock: {design.per_device_frequency_mhz[device]:.0f} MHz",
        "",
    ]
    # One pblock per slot, sized as a grid cell of the SLR layout.
    for slot in part.slots():
        name = _pblock_name(slot.row, slot.col)
        lines.append(f"create_pblock {name}")
        lines.append(
            f"resize_pblock {name} -add "
            f"CLOCKREGION_X{slot.col * 4}Y{slot.row * 4}:"
            f"CLOCKREGION_X{slot.col * 4 + 3}Y{slot.row * 4 + 3}"
        )
    lines.append("")
    # Cell-to-pblock assignments, grouped per slot for readability.
    by_slot: dict[tuple[int, int], list[str]] = {}
    for task, slot in plan.placement.items():
        by_slot.setdefault((slot.row, slot.col), []).append(task)
    for (row, col), tasks in sorted(by_slot.items()):
        name = _pblock_name(row, col)
        for task in sorted(tasks):
            lines.append(f"add_cells_to_pblock {name} [get_cells -hier {task}*]")
    lines.append("")
    # Pipeline-register annotations (informational: the RTL generator
    # inserts the registers; the comment trail documents why).
    pipeline = design.pipelines[device]
    for channel, stages in sorted(pipeline.crossing_stages.items()):
        total = stages + pipeline.balance_stages.get(channel, 0)
        lines.append(
            f"# fifo {channel}: {stages} crossing register(s)"
            + (
                f" + {total - stages} balance register(s)"
                if total > stages
                else ""
            )
        )
    period_ns = 1e3 / design.per_device_frequency_mhz[device]
    lines.append("")
    lines.append(
        f"create_clock -period {period_ns:.3f} -name ap_clk [get_ports ap_clk]"
    )
    return "\n".join(lines) + "\n"


def _cfg_for_device(design: CompiledDesign, device: int) -> str:
    """The Vitis ``--connectivity.sp`` style HBM channel mapping."""
    binding = design.hbm_bindings[device]
    lines = [
        f"# HBM channel binding for FPGA{device} "
        f"(method: {binding.method})",
        "[connectivity]",
    ]
    for (task, port), channel in sorted(binding.binding.items()):
        lines.append(f"sp={task}.{port}:HBM[{channel}]")
    return "\n".join(lines) + "\n"


def emit_constraints(design: CompiledDesign) -> dict[int, DeviceConstraints]:
    """Render per-device constraint artifacts for a compiled design."""
    out: dict[int, DeviceConstraints] = {}
    for device in sorted(design.intra):
        part = design.cluster.device(device).part
        out[device] = DeviceConstraints(
            device_num=device,
            tcl=_tcl_for_device(design, device, part),
            connectivity_cfg=_cfg_for_device(design, device),
        )
    return out


_CELL_LINE_PREFIX = "add_cells_to_pblock "
_PBLOCK_LINE_PREFIX = "create_pblock "


def parse_pblock_assignments(tcl: str) -> dict[str, str]:
    """Task -> pblock name, recovered from an emitted Tcl constraint file.

    The floorplan design-rule checker cross-checks this against the
    placement the Tcl was rendered from, so a drift between the two
    emitters can never ship silently.
    """
    assignments: dict[str, str] = {}
    for line in tcl.splitlines():
        line = line.strip()
        if not line.startswith(_CELL_LINE_PREFIX):
            continue
        rest = line[len(_CELL_LINE_PREFIX):]
        pblock, _, cells = rest.partition(" ")
        marker = "-hier "
        idx = cells.find(marker)
        if idx < 0:
            continue
        cell = cells[idx + len(marker):].rstrip("]").rstrip("*").strip()
        if cell:
            assignments[cell] = pblock
    return assignments


def parse_pblock_names(tcl: str) -> set[str]:
    """The pblock names a Tcl constraint file creates."""
    return {
        line.strip()[len(_PBLOCK_LINE_PREFIX):].strip()
        for line in tcl.splitlines()
        if line.strip().startswith(_PBLOCK_LINE_PREFIX)
    }


def write_constraints(design: CompiledDesign, directory) -> list[str]:
    """Write the artifacts to ``directory``; returns the file paths."""
    import pathlib

    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for device, artifacts in emit_constraints(design).items():
        tcl_path = directory / f"fpga{device}_floorplan.tcl"
        cfg_path = directory / f"fpga{device}_connectivity.cfg"
        tcl_path.write_text(artifacts.tcl)
        cfg_path.write_text(artifacts.connectivity_cfg)
        paths.extend([str(tcl_path), str(cfg_path)])
    return paths
