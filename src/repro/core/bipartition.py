"""Two-way ILP partitioning: the primitive both floorplanning layers share.

Section 4.5 describes TAPA-CS's intra-FPGA strategy as "a two-way
ILP-based partitioning scheme" applied recursively; the inter-FPGA layer
also falls back to recursive bisection for very large designs.  The
formulation here is the standard exact min-cut-with-capacities:

* one binary ``x_v`` per task (0 = left side, 1 = right side);
* per-resource capacity constraints on each side (Eq. 1 with threshold T);
* one auxiliary ``d_e in [0, 1]`` per edge with ``d_e >= x_u - x_v`` and
  ``d_e >= x_v - x_u``, so ``d_e`` is forced to 1 exactly when the edge is
  cut; the objective sums ``weight_e * d_e``.

Tasks can be *pinned* to a side (HBM-anchored tasks must stay near the
HBM die; already-placed neighbours constrain later refinement rounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InfeasibleError
from ..graph.graph import TaskGraph
from ..hls.resource import RESOURCE_KINDS, ResourceVector
from ..ilp import Model, solve, sum_expr


@dataclass(slots=True)
class BipartitionSpec:
    """Inputs to one two-way split.

    Attributes:
        graph: the (sub)design to split.
        capacity_left / capacity_right: resource capacity of each side.
        threshold: utilization ceiling T applied to both sides.
        edge_weights: per-channel objective weight; defaults to the FIFO
            bit width (the Eq. 2 / Eq. 4 weighting).
        pinned: task name -> side (0 or 1) for pre-placed tasks.
        affinity: task name -> side preference expressed as a soft cost
            added when the task lands on the *other* side (used to keep
            HBM tasks near the HBM row without hard infeasibility).
        backend: ILP backend name.
        time_limit: solver budget in seconds.
    """

    graph: TaskGraph
    capacity_left: ResourceVector
    capacity_right: ResourceVector
    threshold: float = 0.7
    edge_weights: dict[str, float] | None = None
    pinned: dict[str, int] = field(default_factory=dict)
    affinity: dict[str, tuple[int, float]] = field(default_factory=dict)
    backend: str = "scipy"
    time_limit: float | None = None
    #: Optional HBM-port budgets: each side can host at most this many
    #: memory-mapped ports (None = unconstrained).  Devices expose a fixed
    #: number of HBM pseudo-channels, which caps the AXI ports they serve.
    hbm_ports_left: float | None = None
    hbm_ports_right: float | None = None
    #: Optional compute-load balancing (the Section 4.1 goal): each side
    #: must carry at least this much of ``balance_kind``.
    balance_kind: str | None = None
    balance_min_left: float = 0.0
    balance_min_right: float = 0.0


@dataclass(slots=True)
class BipartitionResult:
    """Outcome of one two-way split."""

    side: dict[str, int]
    cut_weight: float
    objective: float
    solve_seconds: float

    def tasks_on(self, which: int) -> list[str]:
        return [name for name, side in self.side.items() if side == which]


def bipartition(spec: BipartitionSpec) -> BipartitionResult:
    """Solve one exact two-way partition.

    Raises:
        InfeasibleError: when the design cannot fit the two capacities
            under the threshold (or the pins force an overflow).
    """
    graph = spec.graph
    model = Model(f"bipartition_{graph.name}")
    weights = spec.edge_weights or {}

    x = {}
    for task in graph.tasks():
        var = model.binary_var(f"x_{task.name}")
        x[task.name] = var
        pin = spec.pinned.get(task.name)
        if pin is not None:
            if pin not in (0, 1):
                raise InfeasibleError(
                    f"pin for {task.name!r} must be 0 or 1, got {pin}"
                )
            model.add_constraint(var == pin)

    # Eq. 1 capacity constraints on each side, per resource kind.
    for kind in RESOURCE_KINDS:
        cap_left = spec.capacity_left[kind] * spec.threshold
        cap_right = spec.capacity_right[kind] * spec.threshold
        usage_right = sum_expr(
            task.require_resources()[kind] * x[task.name] for task in graph.tasks()
        )
        total = sum(task.require_resources()[kind] for task in graph.tasks())
        # right side: sum_v area_v * x_v <= T * cap_right
        model.add_constraint(usage_right <= cap_right, name=f"cap_right_{kind}")
        # left side: total - right usage <= T * cap_left
        model.add_constraint(usage_right >= total - cap_left, name=f"cap_left_{kind}")

    # HBM-port budgets per side.
    port_count = {t.name: float(len(t.hbm_ports)) for t in graph.tasks()}
    total_ports = sum(port_count.values())
    if total_ports > 0 and (
        spec.hbm_ports_left is not None or spec.hbm_ports_right is not None
    ):
        ports_right = sum_expr(
            port_count[t.name] * x[t.name] for t in graph.tasks()
        )
        if spec.hbm_ports_right is not None:
            model.add_constraint(ports_right <= spec.hbm_ports_right,
                                 name="hbm_ports_right")
        if spec.hbm_ports_left is not None:
            model.add_constraint(ports_right >= total_ports - spec.hbm_ports_left,
                                 name="hbm_ports_left")

    # Compute-load balancing floors.
    if spec.balance_kind is not None:
        kind = spec.balance_kind
        usage_right = sum_expr(
            task.require_resources()[kind] * x[task.name] for task in graph.tasks()
        )
        total_kind = sum(task.require_resources()[kind] for task in graph.tasks())
        if spec.balance_min_right > 0:
            model.add_constraint(usage_right >= spec.balance_min_right,
                                 name="balance_right")
        if spec.balance_min_left > 0:
            model.add_constraint(
                usage_right <= total_kind - spec.balance_min_left,
                name="balance_left",
            )

    # Cut indicators.
    cut_terms = []
    for chan in graph.channels():
        weight = weights.get(chan.name, float(chan.width_bits))
        if weight == 0:
            continue
        d = model.continuous_var(f"d_{chan.name}", lower=0.0, upper=1.0)
        model.add_constraint(d >= x[chan.src] - x[chan.dst])
        model.add_constraint(d >= x[chan.dst] - x[chan.src])
        cut_terms.append(weight * d)

    # Soft affinities: pay a cost when a task lands away from its side.
    affinity_terms = []
    for name, (side, cost) in spec.affinity.items():
        if name not in x:
            continue
        if side == 0:
            affinity_terms.append(cost * x[name])
        else:
            affinity_terms.append(cost * (1 - x[name]))

    model.minimize(sum_expr(cut_terms) + sum_expr(affinity_terms))

    solution = solve(model, backend=spec.backend, time_limit=spec.time_limit)
    if not solution.is_usable:
        raise InfeasibleError(
            f"two-way partition of {graph.name!r} is infeasible: the design "
            f"does not fit the two capacities at threshold {spec.threshold}"
        )

    side = {name: int(round(solution[var])) for name, var in x.items()}
    cut_weight = sum(
        weights.get(c.name, float(c.width_bits))
        for c in graph.channels()
        if side[c.src] != side[c.dst]
    )
    return BipartitionResult(
        side=side,
        cut_weight=cut_weight,
        objective=solution.objective,
        solve_seconds=solution.solve_seconds,
    )
