"""Automatic HBM channel binding exploration (Section 4.5).

All 32 HBM channels of the U55C surface in the bottom die.  Binding many
wide ports to few channels starves them of bandwidth; binding ports far
from their task's column adds routing pressure in the bottom die — the
failure mode of the KNN motivating example.  TAPA-CS therefore explores
bindings that (a) spread bandwidth demand evenly over channels and
(b) keep each port's channel physically near the task that owns it.

Implemented as a small exact ILP (ports x channels binaries, minimizing a
weighted sum of per-channel oversubscription and port-to-channel column
distance), with a greedy fallback for very large port counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..devices.fpga import FPGAPart
from ..errors import FloorplanError
from ..graph.graph import TaskGraph
from ..ilp import Model, solve, sum_expr
from .intra_floorplan import IntraFloorplan

#: Relative weight of a unit of column distance vs a Gbps of oversubscription.
DISTANCE_WEIGHT = 2.0

#: Above this many port*channel products the explorer goes greedy.
AUTO_ILP_CUTOFF = 1500


@dataclass(frozen=True, slots=True)
class PortDemand:
    """One HBM port's bandwidth demand, derived from the performance model.

    ``demand_gbps`` assumes the port streams its full volume for the whole
    kernel runtime; what matters to the binding is the *relative* pressure,
    so per-port width-proportional demand is a faithful proxy.
    """

    task: str
    port: str
    width_bits: int
    demand_gbps: float
    col: int  # column of the owning task's slot


@dataclass(slots=True)
class HBMBinding:
    """The chosen port -> channel mapping and its quality metrics."""

    binding: dict[tuple[str, str], int]
    channel_demand_gbps: dict[int, float]
    oversubscription_gbps: float
    total_column_distance: float
    solve_seconds: float
    method: str

    @property
    def max_channel_demand_gbps(self) -> float:
        return max(self.channel_demand_gbps.values(), default=0.0)

    def quality(self, part: FPGAPart) -> float:
        """0..1 score used by the frequency model (1 = perfectly balanced).

        Only *contention* counts: a single port whose width out-runs its
        pseudo-channel is merely capped at the channel rate, but two or
        more ports arbitrating for one channel add switching logic and
        routing pressure in the HBM die — the congestion Section 3's KNN
        example blames for routing failure.
        """
        per_channel = part.hbm_channel_effective_gbps
        if per_channel <= 0 or not self.binding:
            return 1.0
        sharers: dict[int, int] = {}
        for channel in self.binding.values():
            sharers[channel] = sharers.get(channel, 0) + 1
        worst = max(
            (
                demand
                for channel, demand in self.channel_demand_gbps.items()
                if sharers.get(channel, 0) >= 2
            ),
            default=0.0,
        )
        sharing_quality = 1.0 if worst <= per_channel else per_channel / worst
        # Placement locality: a port bound to a channel in the other half
        # of the HBM die drags its AXI wiring across the bottom row.  The
        # explorer minimizes this distance; naive in-order binding ignores
        # it, which is part of why unguided flows congest the HBM die.
        avg_distance = self.total_column_distance / len(self.binding)
        distance_quality = max(0.0, 1.0 - 0.25 * min(1.0, avg_distance))
        return min(sharing_quality, distance_quality)


def collect_port_demands(
    graph: TaskGraph,
    floorplan: IntraFloorplan,
    runtime_seconds: float | None = None,
) -> list[PortDemand]:
    """Derive per-port bandwidth demands for one device's tasks.

    Without a measured runtime the demand proxy is the port's line rate
    (``width x 300 MHz``): a streaming AXI port wants the full bandwidth
    its width can draw, which is what makes the explorer spread wide
    ports across channels instead of packing them near their task.
    """
    demands = []
    for name in floorplan.placement:
        task = graph.task(name)
        for port in task.hbm_ports:
            if runtime_seconds is not None and port.volume_bytes > 0:
                gbps = port.volume_bytes * 8.0 / 1e9 / max(runtime_seconds, 1e-12)
            else:
                gbps = port.width_bits * 300e6 / 1e9
            demands.append(
                PortDemand(
                    task=name,
                    port=port.name,
                    width_bits=port.width_bits,
                    demand_gbps=gbps,
                    col=floorplan.placement[name].col,
                )
            )
    return demands


def _bind_greedy(demands: list[PortDemand], part: FPGAPart) -> dict[tuple[str, str], int]:
    channels = part.hbm_channels()
    load = {c.index: 0.0 for c in channels}
    binding: dict[tuple[str, str], int] = {}
    for demand in sorted(demands, key=lambda d: -d.demand_gbps):
        best, best_cost = None, float("inf")
        for chan in channels:
            cost = load[chan.index] + DISTANCE_WEIGHT * abs(chan.port_col - demand.col)
            if cost < best_cost:
                best, best_cost = chan.index, cost
        binding[(demand.task, demand.port)] = best
        load[best] += demand.demand_gbps
    return binding


def _bind_ilp(
    demands: list[PortDemand],
    part: FPGAPart,
    backend: str,
    time_limit: float | None,
) -> dict[tuple[str, str], int] | None:
    channels = part.hbm_channels()
    per_channel_bw = part.hbm_channel_effective_gbps
    model = Model("hbm_binding")
    b = {
        (i, c.index): model.binary_var(f"b_{i}_{c.index}")
        for i in range(len(demands))
        for c in channels
    }
    for i in range(len(demands)):
        model.add_constraint(sum_expr(b[i, c.index] for c in channels) == 1)

    # Total oversubscription alone cannot distinguish piling from
    # spreading once every channel is occupied (the sum is invariant), so
    # the worst channel's overload is minimized as well — that is the
    # quantity that throttles the slowest port and congests the HBM die.
    over_terms = []
    z_max = model.continuous_var("over_max", lower=0.0)
    for chan in channels:
        demand_expr = sum_expr(
            demands[i].demand_gbps * b[i, chan.index] for i in range(len(demands))
        )
        z = model.continuous_var(f"over_{chan.index}", lower=0.0)
        model.add_constraint(z >= demand_expr - per_channel_bw)
        model.add_constraint(z_max >= demand_expr - per_channel_bw)
        over_terms.append(z)

    dist_terms = [
        DISTANCE_WEIGHT * abs(chan.port_col - demands[i].col) * b[i, chan.index]
        for i in range(len(demands))
        for chan in channels
    ]
    model.minimize(sum_expr(over_terms) + 10.0 * z_max + sum_expr(dist_terms))
    solution = solve(model, backend=backend, time_limit=time_limit)
    if not solution.is_usable:
        return None
    binding = {}
    for i, demand in enumerate(demands):
        for chan in channels:
            if solution[b[i, chan.index]] > 0.5:
                binding[(demand.task, demand.port)] = chan.index
                break
    return binding


def bind_hbm_channels(
    graph: TaskGraph,
    floorplan: IntraFloorplan,
    part: FPGAPart,
    runtime_seconds: float | None = None,
    backend: str = "scipy",
    time_limit: float | None = 10.0,
    explore: bool = True,
) -> HBMBinding:
    """Bind every HBM port of the placed tasks to a channel.

    ``explore=False`` reproduces the naive in-order binding commercial
    flows default to (ports packed onto the lowest channels) — the ablation
    showing why the explorer matters.
    """
    if part.num_hbm_channels == 0:
        if any(graph.task(n).uses_hbm for n in floorplan.placement):
            raise FloorplanError(f"part {part.name} has no HBM but tasks use it")
        return HBMBinding({}, {}, 0.0, 0.0, 0.0, method="none")

    demands = collect_port_demands(graph, floorplan, runtime_seconds)
    start = time.perf_counter()
    # Honor explicit per-port pins first.
    pinned: dict[tuple[str, str], int] = {}
    free: list[PortDemand] = []
    for demand in demands:
        port = next(
            p for p in graph.task(demand.task).hbm_ports if p.name == demand.port
        )
        if port.preferred_channel is not None:
            pinned[(demand.task, demand.port)] = port.preferred_channel
        else:
            free.append(demand)

    def binding_cost(candidate: dict[tuple[str, str], int]) -> float:
        """The explorer's objective, for comparing candidate bindings."""
        per_channel = part.hbm_channel_effective_gbps
        channels = {c.index: c for c in part.hbm_channels()}
        load: dict[int, float] = {}
        distance = 0.0
        for demand in free:
            chan_idx = candidate[(demand.task, demand.port)]
            load[chan_idx] = load.get(chan_idx, 0.0) + demand.demand_gbps
            distance += abs(channels[chan_idx].port_col - demand.col)
        overloads = [max(0.0, l - per_channel) for l in load.values()]
        return sum(overloads) + 10.0 * max(overloads, default=0.0) + (
            DISTANCE_WEIGHT * distance
        )

    method = "pinned-only"
    if not explore:
        binding = dict(pinned)
        for i, demand in enumerate(free):
            binding[(demand.task, demand.port)] = i % part.num_hbm_channels
        method = "naive"
    elif free:
        # The ILP may stop at its time limit with a mediocre incumbent;
        # the greedy spread is a strong warm solution, so keep whichever
        # scores better under the shared objective.
        greedy = _bind_greedy(free, part)
        best, method = greedy, "greedy"
        if len(free) * part.num_hbm_channels <= AUTO_ILP_CUTOFF:
            ilp_binding = _bind_ilp(free, part, backend, time_limit)
            if ilp_binding is not None and binding_cost(ilp_binding) <= binding_cost(greedy):
                best, method = ilp_binding, "ilp"
        binding = {**pinned, **best}
    else:
        binding = dict(pinned)

    elapsed = time.perf_counter() - start
    channel_demand: dict[int, float] = {}
    column_distance = 0.0
    channels = {c.index: c for c in part.hbm_channels()}
    for demand in demands:
        chan_idx = binding[(demand.task, demand.port)]
        channel_demand[chan_idx] = channel_demand.get(chan_idx, 0.0) + demand.demand_gbps
        column_distance += abs(channels[chan_idx].port_col - demand.col)
    per_channel_bw = part.hbm_channel_effective_gbps
    oversub = sum(
        max(0.0, load - per_channel_bw) for load in channel_demand.values()
    )
    return HBMBinding(
        binding=binding,
        channel_demand_gbps=channel_demand,
        oversubscription_gbps=oversub,
        total_column_distance=column_distance,
        solve_seconds=elapsed,
        method=method,
    )
