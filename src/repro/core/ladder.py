"""The floorplan quality ladder: deadline-driven graceful degradation.

A compile under deadline pressure should return a *worse plan on time*
rather than the best plan late.  The ladder orders four floorplanning
tiers from best to cheapest:

* ``"full"``    — the configured flow, ILP budgets clamped only by the
  remaining request time;
* ``"budget"``  — the same flow with hard-capped per-solve budgets, so a
  slow ILP returns its incumbent (or fails fast) instead of running the
  clock out;
* ``"coarse"``  — the inter-FPGA ILP runs on a coarsened graph
  (:func:`~repro.graph.transform.coarsen`) and the assignment projects
  back to the original tasks, shrinking the model by an order of
  magnitude; ILP budgets are tiny;
* ``"greedy"``  — no ILP at all: greedy inter assignment, greedy intra
  placement, greedy HBM binding.  Microseconds, and still DRC-clean
  (thresholds are respected), just without optimality.

:func:`choose_start_tier` picks the entry tier from the remaining
deadline; the compiler steps down a tier whenever the current one fails
with a solver error or a deadline miss, and records the tier that
actually produced the plan on ``CompiledDesign.floorplan_tier``.

Every tier attempt is appended to a per-thread log
(:func:`drain_ladder_log`) so the serving layer can feed its ILP circuit
breaker — a tier that failed on :class:`~repro.errors.SolverError` is a
backend failure; a degraded-but-on-time response is a success for the
request yet still evidence against the backend.
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace
from typing import TYPE_CHECKING

from ..cluster.cluster import Cluster
from ..deadline import Deadline
from ..errors import TapaCSError
from ..graph.graph import TaskGraph
from ..graph.transform import coarsen, project_assignment
from .inter_floorplan import (
    InterFloorplan,
    InterFloorplanConfig,
    finalize_assignment,
    floorplan_inter,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .compiler import CompilerConfig

#: Quality tiers, best first.  ``CompilerConfig.ladder_start`` and the
#: deadline-based entry pick a starting index; failures only move right.
TIERS = ("full", "budget", "coarse", "greedy")

#: Assumed full-quality solve time when the config leaves the inter ILP
#: unbudgeted; only used to judge whether the remaining deadline is
#: comfortable enough to start at the "full" tier.
ASSUMED_FULL_SOLVE_S = 30.0

#: Hard per-solve caps for the degraded ILP tiers (seconds).
BUDGET_TIER_CAP_S = 5.0
COARSE_TIER_CAP_S = 2.0

#: Per-thread record of tier attempts within the current compile:
#: dicts with ``tier``, ``ok``, and (on failure) ``error`` — the
#: exception class name.  Drained by the serving layer per request.
_THREAD_STATE = threading.local()


def _ladder_log() -> list[dict]:
    log = getattr(_THREAD_STATE, "ladder_log", None)
    if log is None:
        log = _THREAD_STATE.ladder_log = []
    return log


def record_tier(tier: str, ok: bool, error: BaseException | None = None) -> None:
    """Append one tier attempt to this thread's ladder log."""
    entry: dict = {"tier": tier, "ok": ok}
    if error is not None:
        entry["error"] = type(error).__name__
    _ladder_log().append(entry)


def drain_ladder_log() -> list[dict]:
    """Return and clear this thread's tier attempts since last drain."""
    log = _ladder_log()
    drained = list(log)
    log.clear()
    return drained


def tiers_from(start: str) -> tuple[str, ...]:
    """The descent sequence beginning at ``start``."""
    if start not in TIERS:
        raise TapaCSError(
            f"unknown floorplan tier {start!r}; choose from {TIERS}"
        )
    return TIERS[TIERS.index(start):]


def choose_start_tier(
    deadline: Deadline | None, config: "CompilerConfig"
) -> str:
    """Pick the entry tier: the worse of the config floor and the budget.

    With no deadline the configured ``ladder_start`` rules.  With one, the
    remaining time must plausibly cover a tier's cost to start there: the
    full tier wants at least half the configured inter-ILP budget, the
    capped tiers successively less.  Starting low is safe — the ladder
    never climbs back up within a request — so the thresholds err cheap.
    """
    floor = TIERS.index(config.ladder_start)
    if deadline is None:
        return TIERS[floor]
    remaining = deadline.remaining()
    full_budget = config.inter.time_limit or ASSUMED_FULL_SOLVE_S
    if remaining >= 0.5 * full_budget:
        pick = 0
    elif remaining >= 2.0:
        pick = 1
    elif remaining >= 0.5:
        pick = 2
    else:
        pick = 3
    return TIERS[max(floor, pick)]


def _cap(configured: float | None, *caps: float | None) -> float | None:
    """Tightest of the configured budget and the caps (0/None = absent).

    The result keeps a small floor so a nearly-spent deadline still gives
    the solver a nonzero window rather than a degenerate zero budget.
    """
    candidates = [
        c for c in (configured, *caps) if c is not None and c > 0
    ]
    if not candidates:
        return None
    return max(0.05, min(candidates))


def tier_config(
    config: "CompilerConfig", tier: str, deadline: Deadline | None
) -> "CompilerConfig":
    """Specialize a compiler config for one ladder tier.

    ILP tiers spend only a *fraction* of the remaining deadline per solve
    (half at "full", a quarter at "budget", ~a sixth at "coarse") so a
    tier that burns its budget and fails still leaves time for the tiers
    below it.  The greedy tier swaps every ILP stage for its heuristic
    twin and needs no budget at all.
    """
    remaining = deadline.remaining() if deadline is not None else None
    if tier == "full":
        frac = 0.5 * remaining if remaining is not None else None
        return replace(
            config,
            inter=replace(config.inter, time_limit=_cap(config.inter.time_limit, frac)),
            intra=replace(config.intra, time_limit=_cap(config.intra.time_limit, frac)),
        )
    if tier == "budget":
        frac = 0.25 * remaining if remaining is not None else None
        return replace(
            config,
            inter=replace(
                config.inter,
                time_limit=_cap(config.inter.time_limit, frac, BUDGET_TIER_CAP_S),
            ),
            intra=replace(
                config.intra,
                time_limit=_cap(config.intra.time_limit, frac, BUDGET_TIER_CAP_S),
            ),
        )
    if tier == "coarse":
        frac = 0.15 * remaining if remaining is not None else None
        return replace(
            config,
            inter=replace(
                config.inter,
                time_limit=_cap(config.inter.time_limit, frac, COARSE_TIER_CAP_S),
            ),
            intra=replace(
                config.intra,
                time_limit=_cap(config.intra.time_limit, frac, COARSE_TIER_CAP_S),
            ),
        )
    if tier == "greedy":
        return replace(
            config,
            inter=replace(config.inter, method="greedy"),
            intra=replace(config.intra, method="greedy"),
            enable_hbm_exploration=False,
        )
    raise TapaCSError(f"unknown floorplan tier {tier!r}; choose from {TIERS}")


def floorplan_inter_coarse(
    graph: TaskGraph, cluster: Cluster, config: InterFloorplanConfig
) -> InterFloorplan:
    """The coarse tier's inter-FPGA step: coarsen, solve small, project.

    Graphs already small enough to be their own coarse graph go straight
    to the normal floorplanner.  The projected assignment is re-audited
    against the *original* task resources by
    :func:`~repro.core.inter_floorplan.finalize_assignment` — exact,
    because each super-node's area is the sum of its members'.
    """
    target = max(2, 4 * max(1, cluster.num_devices))
    if graph.num_tasks <= target:
        return floorplan_inter(graph, cluster, config)
    start = time.perf_counter()
    result = coarsen(graph, target)
    coarse_plan = floorplan_inter(result.graph, cluster, config)
    assignment = project_assignment(result, coarse_plan.assignment)
    return finalize_assignment(
        graph,
        cluster,
        assignment,
        time.perf_counter() - start,
        "coarse",
        config,
    )
