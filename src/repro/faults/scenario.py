"""Declarative fault scenarios for the cluster substrate.

The multi-FPGA results assume a healthy 100 Gbps fabric and a fully
populated cluster; a :class:`FaultScenario` describes how that substrate
is *not* perfect — per-link packet loss, bandwidth degradation, hard
link-down, whole-device failure, and a solver time budget for re-planning
under pressure.

Scenarios are plain data:

* **deterministic** — :func:`random_scenario` derives every fault from an
  explicit seed through its own :class:`random.Random`; nothing reads the
  wall clock or the global RNG, so the same seed always yields the same
  scenario;
* **JSON-round-trippable** — :meth:`FaultScenario.to_dict` /
  :meth:`FaultScenario.from_dict` (and the ``dumps``/``loads`` string
  forms) reproduce the scenario exactly;
* **fingerprintable** — frozen dataclasses of floats/ints/tuples, so the
  content-addressed perf cache can join a scenario digest to its keys.

Link faults are keyed by *unordered* device pairs: the QSFP links are
bidirectional, and a lossy cable is lossy in both directions.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, replace

from ..errors import TapaCSError

#: Format tag for serialized scenarios.
SCENARIO_FORMAT_VERSION = 1


@dataclass(frozen=True, slots=True)
class LinkFault:
    """Degradation of one inter-FPGA link.

    Attributes:
        loss_rate: packet-loss probability in ``[0, 1)``; feeds the
            go-back-N retransmission term of the transfer models.
        bandwidth_factor: multiplier in ``(0, 1]`` on the link's sustained
            bandwidth (e.g. a renegotiated 50 Gbps lane is 0.5).
        down: the link is hard-failed; traffic must route around it.
    """

    loss_rate: float = 0.0
    bandwidth_factor: float = 1.0
    down: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise TapaCSError(
                f"link loss rate must be in [0, 1), got {self.loss_rate}"
            )
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise TapaCSError(
                f"link bandwidth factor must be in (0, 1], got "
                f"{self.bandwidth_factor}"
            )

    @property
    def is_healthy(self) -> bool:
        return (
            self.loss_rate == 0.0
            and self.bandwidth_factor == 1.0
            and not self.down
        )

    def describe(self, pair: tuple[int, int]) -> str:
        parts = []
        if self.down:
            parts.append("down")
        if self.loss_rate > 0.0:
            parts.append(f"loss={self.loss_rate:g}")
        if self.bandwidth_factor < 1.0:
            parts.append(f"bw x{self.bandwidth_factor:g}")
        detail = ", ".join(parts) or "healthy"
        return f"link {pair[0]}<->{pair[1]}: {detail}"


def _pair(i: int, j: int) -> tuple[int, int]:
    if i == j:
        raise TapaCSError(f"a link connects two distinct devices, got ({i}, {j})")
    return (min(i, j), max(i, j))


@dataclass(frozen=True, slots=True)
class FaultScenario:
    """One complete description of a degraded cluster.

    Attributes:
        name: label for reports and cache diagnostics.
        seed: the seed the scenario was derived from (0 for hand-written
            scenarios); carried so a generated scenario round-trips with
            its provenance.
        link_faults: unordered device pair -> :class:`LinkFault`.
        failed_devices: device numbers that are unusable outright.
        default_loss_rate: loss applied to every link without an explicit
            entry (an "entire fabric is lossy" knob).
        solver_time_limit: wall-clock budget in seconds for each ILP
            solve while re-planning; ``None`` keeps the compiler config.
    """

    name: str = "healthy"
    seed: int = 0
    link_faults: tuple[tuple[tuple[int, int], LinkFault], ...] = ()
    failed_devices: tuple[int, ...] = ()
    default_loss_rate: float = 0.0
    solver_time_limit: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.default_loss_rate < 1.0:
            raise TapaCSError(
                f"default loss rate must be in [0, 1), got "
                f"{self.default_loss_rate}"
            )
        seen: set[tuple[int, int]] = set()
        for pair, _fault in self.link_faults:
            key = _pair(*pair)
            if key != tuple(pair):
                raise TapaCSError(
                    f"link fault pair {pair} must be ordered (min, max)"
                )
            if key in seen:
                raise TapaCSError(f"duplicate link fault for pair {pair}")
            seen.add(key)
        if len(set(self.failed_devices)) != len(self.failed_devices):
            raise TapaCSError("duplicate failed device numbers")
        if self.solver_time_limit is not None and self.solver_time_limit <= 0:
            raise TapaCSError("solver time limit must be positive")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def healthy(cls) -> "FaultScenario":
        """The no-fault scenario; compiling/simulating under it must
        reproduce the fault-free numbers bit-for-bit."""
        return cls()

    @classmethod
    def lossy(cls, loss_rate: float, name: str | None = None) -> "FaultScenario":
        """Uniform packet loss on every link."""
        return cls(
            name=name or f"lossy-{loss_rate:g}", default_loss_rate=loss_rate
        )

    @classmethod
    def from_faults(
        cls,
        name: str = "custom",
        link_faults: dict[tuple[int, int], LinkFault] | None = None,
        failed_devices: tuple[int, ...] | list[int] = (),
        default_loss_rate: float = 0.0,
        solver_time_limit: float | None = None,
        seed: int = 0,
    ) -> "FaultScenario":
        """Build a scenario from a mapping, normalizing pair order."""
        normalized: dict[tuple[int, int], LinkFault] = {}
        for (i, j), fault in (link_faults or {}).items():
            key = _pair(i, j)
            if key in normalized and normalized[key] != fault:
                raise TapaCSError(
                    f"conflicting faults for link {key[0]}<->{key[1]}"
                )
            normalized[key] = fault
        return cls(
            name=name,
            seed=seed,
            link_faults=tuple(sorted(normalized.items())),
            failed_devices=tuple(sorted(set(failed_devices))),
            default_loss_rate=default_loss_rate,
            solver_time_limit=solver_time_limit,
        )

    # -- mutation helpers (return new scenarios; the type is frozen) -----------

    def kill_device(self, device: int) -> "FaultScenario":
        if device in self.failed_devices:
            return self
        return replace(
            self,
            name=f"{self.name}+dev{device}-down",
            failed_devices=tuple(sorted(self.failed_devices + (device,))),
        )

    def kill_link(self, i: int, j: int) -> "FaultScenario":
        return self.with_link_fault(i, j, LinkFault(down=True))

    def with_link_fault(self, i: int, j: int, fault: LinkFault) -> "FaultScenario":
        key = _pair(i, j)
        faults = dict(self.link_faults)
        faults[key] = fault
        return replace(
            self,
            name=f"{self.name}+{fault.describe(key).split(':')[0].replace(' ', '')}",
            link_faults=tuple(sorted(faults.items())),
        )

    # -- queries ----------------------------------------------------------------

    @property
    def is_healthy(self) -> bool:
        """True when the scenario injects nothing that can change an
        outcome (the solver budget alone does not count as a fault)."""
        return (
            not self.failed_devices
            and self.default_loss_rate == 0.0
            and all(f.is_healthy for _, f in self.link_faults)
        )

    def device_failed(self, device: int) -> bool:
        return device in self.failed_devices

    def link_fault(self, i: int, j: int) -> LinkFault:
        """The effective fault on the (unordered) link ``i <-> j``.

        The default loss rate applies wherever no explicit entry raises
        it higher; explicit entries keep their own bandwidth/down state.
        """
        key = _pair(i, j)
        explicit = dict(self.link_faults).get(key)
        if explicit is None:
            if self.default_loss_rate > 0.0:
                return LinkFault(loss_rate=self.default_loss_rate)
            return LinkFault()
        if self.default_loss_rate > explicit.loss_rate:
            return replace(explicit, loss_rate=self.default_loss_rate)
        return explicit

    def link_down(self, i: int, j: int) -> bool:
        return self.link_fault(i, j).down

    def describe_faults(self) -> list[str]:
        """Human-readable fault list for error messages and reports."""
        out = [f"device {d}: failed" for d in self.failed_devices]
        out.extend(
            fault.describe(pair)
            for pair, fault in self.link_faults
            if not fault.is_healthy
        )
        if self.default_loss_rate > 0.0:
            out.append(f"all links: loss>={self.default_loss_rate:g}")
        if self.solver_time_limit is not None:
            out.append(f"solver budget: {self.solver_time_limit:g}s")
        return out

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format_version": SCENARIO_FORMAT_VERSION,
            "name": self.name,
            "seed": self.seed,
            "link_faults": [
                {
                    "devices": list(pair),
                    "loss_rate": fault.loss_rate,
                    "bandwidth_factor": fault.bandwidth_factor,
                    "down": fault.down,
                }
                for pair, fault in self.link_faults
            ],
            "failed_devices": list(self.failed_devices),
            "default_loss_rate": self.default_loss_rate,
            "solver_time_limit": self.solver_time_limit,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultScenario":
        version = data.get("format_version", SCENARIO_FORMAT_VERSION)
        if version != SCENARIO_FORMAT_VERSION:
            raise TapaCSError(
                f"unsupported fault-scenario format version {version!r} "
                f"(this build reads version {SCENARIO_FORMAT_VERSION})"
            )
        faults: dict[tuple[int, int], LinkFault] = {}
        for entry in data.get("link_faults", []):
            devices = entry.get("devices", [])
            if len(devices) != 2:
                raise TapaCSError(
                    f"link fault entry needs exactly two devices, got {devices}"
                )
            faults[(int(devices[0]), int(devices[1]))] = LinkFault(
                loss_rate=float(entry.get("loss_rate", 0.0)),
                bandwidth_factor=float(entry.get("bandwidth_factor", 1.0)),
                down=bool(entry.get("down", False)),
            )
        limit = data.get("solver_time_limit")
        return cls.from_faults(
            name=str(data.get("name", "scenario")),
            seed=int(data.get("seed", 0)),
            link_faults=faults,
            failed_devices=[int(d) for d in data.get("failed_devices", [])],
            default_loss_rate=float(data.get("default_loss_rate", 0.0)),
            solver_time_limit=None if limit is None else float(limit),
        )

    def dumps(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def loads(cls, text: str) -> "FaultScenario":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultScenario":
        with open(path) as handle:
            return cls.loads(handle.read())


def random_scenario(
    num_devices: int,
    seed: int,
    loss_scale: float = 1e-4,
    degrade_probability: float = 0.3,
    kill_link_probability: float = 0.05,
    kill_device_probability: float = 0.0,
    name: str | None = None,
) -> FaultScenario:
    """A reproducible randomly-degraded cluster.

    Every draw comes from ``random.Random(seed)`` — no global RNG, no
    wall clock — so the scenario is a pure function of its arguments.
    Candidate links are all unordered device pairs; each independently
    degrades with ``degrade_probability`` (loss exponentially distributed
    around ``loss_scale``, bandwidth uniform in [0.5, 1.0]) or goes down
    with ``kill_link_probability``.  At most ``num_devices - 1`` devices
    can fail so the scenario never kills the whole cluster.
    """
    if num_devices < 1:
        raise TapaCSError("need at least one device")
    rng = random.Random(seed)
    faults: dict[tuple[int, int], LinkFault] = {}
    for i in range(num_devices):
        for j in range(i + 1, num_devices):
            roll = rng.random()
            if roll < kill_link_probability:
                faults[(i, j)] = LinkFault(down=True)
            elif roll < kill_link_probability + degrade_probability:
                loss = min(0.5, rng.expovariate(1.0 / loss_scale))
                faults[(i, j)] = LinkFault(
                    loss_rate=loss,
                    bandwidth_factor=rng.uniform(0.5, 1.0),
                )
    failed = [
        d for d in range(num_devices) if rng.random() < kill_device_probability
    ]
    if len(failed) >= num_devices:
        failed = failed[: num_devices - 1]
    return FaultScenario.from_faults(
        name=name or f"random-seed{seed}",
        seed=seed,
        link_faults=faults,
        failed_devices=failed,
    )
