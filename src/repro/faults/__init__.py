"""Fault injection for the cluster substrate.

Declarative :class:`FaultScenario` objects describe lossy links, degraded
bandwidth, down links, failed devices, and solver time budgets;
:func:`apply_faults` projects a scenario onto a cluster so the ordinary
compile/simulate pipeline can run on the degraded substrate.
"""

from .apply import (
    UNREACHABLE,
    DegradedTopology,
    alive_devices,
    apply_faults,
    validate_scenario_against,
)
from .scenario import (
    SCENARIO_FORMAT_VERSION,
    FaultScenario,
    LinkFault,
    random_scenario,
)

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "UNREACHABLE",
    "DegradedTopology",
    "FaultScenario",
    "LinkFault",
    "alive_devices",
    "apply_faults",
    "random_scenario",
    "validate_scenario_against",
]
