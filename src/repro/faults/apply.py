"""Project a :class:`FaultScenario` onto a :class:`Cluster`.

The compiler never mutates the cluster it is given; :func:`apply_faults`
returns a *masked* copy on which the ordinary floorplanning machinery
runs unchanged:

* a failed device keeps its ``device_num`` (the cluster requires
  contiguous numbering, and scenario indices must keep lining up with
  stream device numbers) but has its entire resource vector reserved, so
  ``usable_resources`` collapses to zero and no ILP can place work on it;
* down links and failed devices are cut out of the topology, replaced by
  a :class:`DegradedTopology` whose distances are BFS hop counts over the
  surviving adjacency — traffic reroutes around the hole, and pairs with
  no surviving path get a large-but-finite :data:`UNREACHABLE` distance
  that the ILP's communication cost steers hard away from.

A healthy scenario returns the cluster object untouched, which is what
makes the bit-for-bit parity guarantee trivial to audit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace

from ..cluster.cluster import Cluster
from ..cluster.topology import Topology
from ..errors import DegradedClusterError, TopologyError
from .scenario import FaultScenario

#: Hop count assigned to device pairs with no surviving path.  Large enough
#: that any feasible alternative wins the ILP's communication cost, small
#: enough to stay well inside solver-friendly coefficient ranges.
UNREACHABLE = 10_000


class DegradedTopology(Topology):
    """Hop counts over the surviving links of a faulted base topology.

    Adjacency starts from the base topology's one-hop pairs, then drops
    every down link and every link touching a failed device; distances are
    breadth-first hop counts over what remains.  The full distance matrix
    is precomputed (clusters are small — at most a few dozen devices), so
    lookups stay O(1) like the analytic topologies.
    """

    def __init__(
        self,
        base: Topology,
        down_links: frozenset[tuple[int, int]] = frozenset(),
        failed_devices: frozenset[int] = frozenset(),
    ):
        self._base = base
        self._down_links = frozenset(
            (min(i, j), max(i, j)) for i, j in down_links
        )
        self._failed = frozenset(failed_devices)
        self._matrix = self._bfs_all(base)
        super().__init__(num_devices=base.num_devices)

    def _bfs_all(self, base: Topology) -> list[list[int]]:
        n = base.num_devices
        adjacency: list[list[int]] = [[] for _ in range(n)]
        for i in range(n):
            if i in self._failed:
                continue
            for j in base.neighbors(i):
                if j in self._failed:
                    continue
                if (min(i, j), max(i, j)) in self._down_links:
                    continue
                adjacency[i].append(j)
        matrix = [[UNREACHABLE] * n for _ in range(n)]
        for src in range(n):
            matrix[src][src] = 0
            if src in self._failed:
                continue
            queue = deque([src])
            while queue:
                here = queue.popleft()
                for nxt in adjacency[here]:
                    if matrix[src][nxt] == UNREACHABLE:
                        matrix[src][nxt] = matrix[src][here] + 1
                        queue.append(nxt)
        return matrix

    @property
    def base(self) -> Topology:
        return self._base

    @property
    def name(self) -> str:
        return f"degraded-{self._base.name}"

    def dist(self, i: int, j: int) -> int:
        self._check(i, j)
        return self._matrix[i][j]

    def is_unreachable(self, i: int, j: int) -> bool:
        """True when no surviving path connects ``i`` and ``j``."""
        return i != j and self._matrix[i][j] >= UNREACHABLE


def validate_scenario_against(scenario: FaultScenario, num_devices: int) -> None:
    """Reject scenarios that reference hardware the cluster doesn't have."""
    for device in scenario.failed_devices:
        if not 0 <= device < num_devices:
            raise TopologyError(
                f"fault scenario {scenario.name!r} fails device {device}, "
                f"but the cluster has devices 0..{num_devices - 1}"
            )
    for (i, j), _fault in scenario.link_faults:
        for device in (i, j):
            if not 0 <= device < num_devices:
                raise TopologyError(
                    f"fault scenario {scenario.name!r} references link "
                    f"{i}<->{j}, but the cluster has devices "
                    f"0..{num_devices - 1}"
                )


def apply_faults(cluster: Cluster, scenario: FaultScenario | None) -> Cluster:
    """The cluster as the scenario's faults leave it.

    Healthy (or absent) scenarios return ``cluster`` itself — same object,
    bit-for-bit behavior.  Otherwise a new cluster is built with failed
    devices fully reserved and the topology rerouted around down links;
    if no device survives at all, a :class:`DegradedClusterError` names
    the faults immediately (there is nothing left to plan on).
    """
    if scenario is None or scenario.is_healthy:
        return cluster
    validate_scenario_against(scenario, cluster.num_devices)

    failed = frozenset(scenario.failed_devices)
    alive = [d for d in range(cluster.num_devices) if d not in failed]
    if not alive:
        raise DegradedClusterError(
            f"fault scenario {scenario.name!r} fails every device in the "
            f"cluster; nothing survives to plan on",
            faults=scenario.describe_faults(),
        )

    down_links = frozenset(
        pair for pair, fault in scenario.link_faults if fault.down
    )

    devices = []
    for instance in cluster.devices:
        if instance.device_num in failed:
            # Reserve the whole part: usable_resources clamps to zero and
            # the floorplanner can never place anything here, while the
            # device keeps its number so indices stay aligned.
            devices.append(replace(instance, reserved=instance.part.resources))
        else:
            devices.append(replace(instance))

    topology: Topology = cluster.topology
    if down_links or failed:
        topology = DegradedTopology(
            base=cluster.topology,
            down_links=down_links,
            failed_devices=failed,
        )

    return Cluster(
        devices=devices,
        topology=topology,
        intra_node_link=cluster.intra_node_link,
        inter_node_link=cluster.inter_node_link,
    )


def alive_devices(cluster: Cluster) -> list[int]:
    """Device numbers with any usable resources (i.e. not masked out)."""
    return [
        d.device_num
        for d in cluster.devices
        if sum(d.usable_resources.as_tuple()) > 0
    ]
