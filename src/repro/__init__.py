"""TAPA-CS reproduction: scalable accelerator design on distributed
HBM-FPGAs (Prakriya et al., ASPLOS 2024).

The public API mirrors the paper's flow:

1. describe a dataflow design with :class:`~repro.graph.GraphBuilder`
   (tasks + FIFO streams, with resource hints and work models);
2. describe the target cluster with :func:`~repro.cluster.make_cluster`
   or :func:`~repro.cluster.paper_testbed`;
3. compile with :func:`~repro.core.compile_design` (or the single-FPGA
   baselines :func:`~repro.core.compile_single_vitis` /
   :func:`~repro.core.compile_single_tapa`);
4. measure with :func:`~repro.sim.simulate` and validate functionally
   with :func:`~repro.sim.execute`.

The paper's benchmark suite lives in :mod:`repro.apps` and the
table/figure harness in :mod:`repro.bench`.  Static design-rule
checking (:mod:`repro.check`, ``python -m repro lint``) verifies task
graphs before compilation and audits compiled floorplans after.
"""

from .check import (
    Diagnostic,
    DiagnosticReport,
    Severity,
    check_design,
    check_graph,
)
from .cluster import Cluster, make_cluster, make_topology, paper_testbed
from .core import (
    CompiledDesign,
    CompilerConfig,
    compile_design,
    compile_single_tapa,
    compile_single_vitis,
)
from .errors import DesignRuleError, TapaCSError
from .graph import GraphBuilder, TaskGraph, TaskWork
from .hls import ResourceVector, synthesize
from .sim import SimulationConfig, SimulationResult, execute, simulate

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "CompiledDesign",
    "CompilerConfig",
    "DesignRuleError",
    "Diagnostic",
    "DiagnosticReport",
    "GraphBuilder",
    "ResourceVector",
    "SimulationConfig",
    "SimulationResult",
    "Severity",
    "TapaCSError",
    "TaskGraph",
    "TaskWork",
    "__version__",
    "check_design",
    "check_graph",
    "compile_design",
    "compile_single_tapa",
    "compile_single_vitis",
    "execute",
    "make_cluster",
    "make_topology",
    "paper_testbed",
    "simulate",
    "synthesize",
]
