"""TAPA-CS reproduction: scalable accelerator design on distributed
HBM-FPGAs (Prakriya et al., ASPLOS 2024).

The public API mirrors the paper's flow:

1. describe a dataflow design with :class:`~repro.graph.GraphBuilder`
   (tasks + FIFO streams, with resource hints and work models);
2. describe the target cluster with :func:`~repro.cluster.make_cluster`
   or :func:`~repro.cluster.paper_testbed`;
3. compile with :func:`~repro.core.compile_design` (or the single-FPGA
   baselines :func:`~repro.core.compile_single_vitis` /
   :func:`~repro.core.compile_single_tapa`);
4. measure with :func:`~repro.sim.simulate` and validate functionally
   with :func:`~repro.sim.execute`.

The paper's benchmark suite lives in :mod:`repro.apps` and the
table/figure harness in :mod:`repro.bench`.
"""

from .cluster import Cluster, make_cluster, make_topology, paper_testbed
from .core import (
    CompiledDesign,
    CompilerConfig,
    compile_design,
    compile_single_tapa,
    compile_single_vitis,
)
from .errors import TapaCSError
from .graph import GraphBuilder, TaskGraph, TaskWork
from .hls import ResourceVector, synthesize
from .sim import SimulationConfig, SimulationResult, execute, simulate

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "CompiledDesign",
    "CompilerConfig",
    "GraphBuilder",
    "ResourceVector",
    "SimulationConfig",
    "SimulationResult",
    "TapaCSError",
    "TaskGraph",
    "TaskWork",
    "__version__",
    "compile_design",
    "compile_single_tapa",
    "compile_single_vitis",
    "execute",
    "make_cluster",
    "make_topology",
    "paper_testbed",
    "simulate",
    "synthesize",
]
