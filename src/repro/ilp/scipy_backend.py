"""HiGHS backend via :func:`scipy.optimize.milp`.

This plays the role Gurobi plays in the paper: an exact mixed-integer
solver.  Models are translated to the sparse matrix form scipy expects.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import sparse
from scipy.optimize import Bounds, LinearConstraint, milp

from ..errors import SolverError
from .model import Model, Sense
from .solution import Solution, SolveStatus

#: scipy.milp status codes -> our statuses.
_STATUS_MAP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.FEASIBLE,  # iteration/time limit with incumbent
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve_with_scipy(
    model: Model,
    time_limit: float | None = None,
    mip_rel_gap: float | None = 0.02,
) -> Solution:
    """Solve ``model`` with HiGHS.

    Args:
        model: the ILP to solve (minimization).
        time_limit: optional wall-clock budget in seconds.
        mip_rel_gap: relative optimality gap at which the search stops.
            Floorplanning instances are highly symmetric (hundreds of
            identical PEs), where proving exact optimality is exponential
            but a 2%-optimal incumbent appears almost immediately.
    """
    num_vars = model.num_variables
    if num_vars == 0:
        return Solution(status=SolveStatus.OPTIMAL, objective=model.objective.constant,
                        backend="scipy-highs")

    cost = np.zeros(num_vars)
    for var, coef in model.objective.terms.items():
        cost[var.index] += coef

    rows, cols, data = [], [], []
    lower_bounds, upper_bounds = [], []
    for row, constraint in enumerate(model.constraints):
        for var, coef in constraint.expr.terms.items():
            rows.append(row)
            cols.append(var.index)
            data.append(coef)
        rhs = -constraint.expr.constant
        if constraint.sense is Sense.LE:
            lower_bounds.append(-np.inf)
            upper_bounds.append(rhs)
        elif constraint.sense is Sense.GE:
            lower_bounds.append(rhs)
            upper_bounds.append(np.inf)
        else:
            lower_bounds.append(rhs)
            upper_bounds.append(rhs)

    constraints = []
    if model.constraints:
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(model.constraints), num_vars)
        )
        constraints.append(
            LinearConstraint(matrix, np.array(lower_bounds), np.array(upper_bounds))
        )

    integrality = np.array([1 if v.is_integer else 0 for v in model.variables])
    bounds = Bounds(
        np.array([v.lower for v in model.variables]),
        np.array([v.upper for v in model.variables]),
    )

    options: dict[str, float] = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    if mip_rel_gap is not None and model.num_integer_variables:
        options["mip_rel_gap"] = mip_rel_gap

    start = time.perf_counter()
    try:
        result = milp(
            c=cost,
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options=options or None,
        )
    except Exception as exc:  # scipy raises on malformed inputs
        raise SolverError(f"scipy milp failed on model {model.name!r}: {exc}") from exc
    elapsed = time.perf_counter() - start

    status = _STATUS_MAP.get(result.status, SolveStatus.ERROR)
    if result.x is None:
        if status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE):
            status = SolveStatus.ERROR
        return Solution(status=status, solve_seconds=elapsed, backend="scipy-highs")

    values = {}
    for var in model.variables:
        value = float(result.x[var.index])
        if var.is_integer:
            value = float(round(value))
        values[var] = value
    objective = model.objective.value(values)
    return Solution(
        status=status,
        objective=objective,
        values=values,
        solve_seconds=elapsed,
        backend="scipy-highs",
    )
