"""A pure-Python branch-and-bound ILP solver.

Plays the role of python-MIP's CBC in the paper: a second, independent
exact backend.  It solves LP relaxations with :func:`scipy.optimize.linprog`
(HiGHS simplex) and branches on the most fractional integer variable,
best-bound first.  Intended for the small-to-medium models the
floorplanner produces; the scipy MILP backend is the default for large
instances.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .model import Model, Sense
from .solution import Solution, SolveStatus

_INT_TOL = 1e-6


class _StandardForm:
    """The model flattened to arrays, with mutable variable bounds."""

    def __init__(self, model: Model):
        self.model = model
        n = model.num_variables
        self.cost = np.zeros(n)
        for var, coef in model.objective.terms.items():
            self.cost[var.index] += coef

        rows, cols, data = [], [], []
        ub_rows, ub_vals = [], []  # A_ub x <= b_ub
        eq_rows, eq_vals = [], []  # A_eq x == b_eq
        ub_idx = itertools.count()
        eq_idx = itertools.count()
        ub_entries: list[tuple[int, int, float]] = []
        eq_entries: list[tuple[int, int, float]] = []
        for constraint in model.constraints:
            rhs = -constraint.expr.constant
            if constraint.sense is Sense.EQ:
                row = next(eq_idx)
                for var, coef in constraint.expr.terms.items():
                    eq_entries.append((row, var.index, coef))
                eq_vals.append(rhs)
            else:
                sign = 1.0 if constraint.sense is Sense.LE else -1.0
                row = next(ub_idx)
                for var, coef in constraint.expr.terms.items():
                    ub_entries.append((row, var.index, sign * coef))
                ub_vals.append(sign * rhs)

        def build(entries, num_rows):
            if not num_rows:
                return None
            r = [e[0] for e in entries]
            c = [e[1] for e in entries]
            d = [e[2] for e in entries]
            return sparse.csr_matrix((d, (r, c)), shape=(num_rows, n))

        self.a_ub = build(ub_entries, len(ub_vals))
        self.b_ub = np.array(ub_vals) if ub_vals else None
        self.a_eq = build(eq_entries, len(eq_vals))
        self.b_eq = np.array(eq_vals) if eq_vals else None
        self.integer_indices = [v.index for v in model.variables if v.is_integer]

    def solve_relaxation(self, lower: np.ndarray, upper: np.ndarray):
        """LP relaxation with the given bound vectors; returns scipy result."""
        bounds = list(zip(lower, upper))
        return linprog(
            c=self.cost,
            A_ub=self.a_ub,
            b_ub=self.b_ub,
            A_eq=self.a_eq,
            b_eq=self.b_eq,
            bounds=bounds,
            method="highs",
        )


def _most_fractional(x: np.ndarray, integer_indices: list[int]) -> int | None:
    """Index of the integer variable farthest from integrality, or None."""
    best_idx, best_frac = None, _INT_TOL
    for idx in integer_indices:
        frac = abs(x[idx] - round(x[idx]))
        if frac > best_frac:
            best_idx, best_frac = idx, frac
    return best_idx


def solve_with_branch_and_bound(
    model: Model,
    time_limit: float | None = None,
    node_limit: int = 200_000,
) -> Solution:
    """Exact 0/1-and-integer branch-and-bound over LP relaxations.

    Returns OPTIMAL when the search tree is exhausted, FEASIBLE when a
    limit was hit with an incumbent in hand, INFEASIBLE otherwise.
    """
    start = time.perf_counter()
    if model.num_variables == 0:
        return Solution(status=SolveStatus.OPTIMAL, objective=model.objective.constant,
                        backend="branch-bound")

    form = _StandardForm(model)
    root_lower = np.array([v.lower for v in model.variables])
    root_upper = np.array([v.upper for v in model.variables])

    incumbent_x: np.ndarray | None = None
    incumbent_obj = math.inf
    nodes = 0
    exhausted = True

    counter = itertools.count()
    heap: list[tuple[float, int, np.ndarray, np.ndarray]] = []

    root = form.solve_relaxation(root_lower, root_upper)
    if root.status == 2:  # infeasible
        return Solution(status=SolveStatus.INFEASIBLE, backend="branch-bound",
                        solve_seconds=time.perf_counter() - start)
    if root.status == 3:
        return Solution(status=SolveStatus.UNBOUNDED, backend="branch-bound",
                        solve_seconds=time.perf_counter() - start)
    heapq.heappush(heap, (root.fun, next(counter), root_lower, root_upper))

    while heap:
        if time_limit is not None and time.perf_counter() - start > time_limit:
            exhausted = False
            break
        if nodes >= node_limit:
            exhausted = False
            break
        bound, _, lower, upper = heapq.heappop(heap)
        if bound >= incumbent_obj - 1e-9:
            continue  # cannot improve on the incumbent
        result = form.solve_relaxation(lower, upper)
        nodes += 1
        if result.status != 0:
            continue  # infeasible or numerical trouble at this node
        if result.fun >= incumbent_obj - 1e-9:
            continue
        branch_idx = _most_fractional(result.x, form.integer_indices)
        if branch_idx is None:
            # Integral solution: new incumbent.
            incumbent_x = result.x.copy()
            incumbent_obj = result.fun
            continue
        value = result.x[branch_idx]
        # Down branch: x <= floor(value)
        down_upper = upper.copy()
        down_upper[branch_idx] = math.floor(value)
        if lower[branch_idx] <= down_upper[branch_idx]:
            heapq.heappush(heap, (result.fun, next(counter), lower.copy(), down_upper))
        # Up branch: x >= ceil(value)
        up_lower = lower.copy()
        up_lower[branch_idx] = math.ceil(value)
        if up_lower[branch_idx] <= upper[branch_idx]:
            heapq.heappush(heap, (result.fun, next(counter), up_lower, upper.copy()))

    elapsed = time.perf_counter() - start
    if incumbent_x is None:
        status = SolveStatus.INFEASIBLE if exhausted else SolveStatus.ERROR
        return Solution(status=status, backend="branch-bound",
                        solve_seconds=elapsed, nodes_explored=nodes)

    values = {}
    for var in model.variables:
        value = float(incumbent_x[var.index])
        if var.is_integer:
            value = float(round(value))
        values[var] = value
    return Solution(
        status=SolveStatus.OPTIMAL if exhausted else SolveStatus.FEASIBLE,
        objective=model.objective.value(values),
        values=values,
        solve_seconds=elapsed,
        backend="branch-bound",
        nodes_explored=nodes,
    )
