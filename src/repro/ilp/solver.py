"""Backend dispatch for ILP solving.

``solve(model)`` picks the scipy/HiGHS backend by default (the fast exact
solver, standing in for Gurobi); ``backend="branch-bound"`` selects the
pure-Python solver (standing in for python-MIP), which is useful for
cross-checking optima and for environments without scipy's HiGHS build.

When the primary backend *fails* — a raised :class:`SolverError` or an
ERROR-status solution, e.g. a time budget expiring before any incumbent —
dispatch automatically retries with the branch-and-bound backend rather
than giving up (``fallback=False`` opts out).  A genuine INFEASIBLE answer
is not a failure and never triggers the fallback.

Every completed solve is appended to a module-level log so orchestration
layers (the compiler's stage accounting) can report which backend actually
produced each plan without threading extra return values through every
floorplanning helper; see :func:`drain_solve_log`.
"""

from __future__ import annotations

from ..errors import SolverError
from .branch_bound import solve_with_branch_and_bound
from .model import Model
from .scipy_backend import solve_with_scipy
from .solution import Solution, SolveStatus

BACKENDS = ("scipy", "branch-bound")

#: Completed solves since the last drain: (winning backend, solve seconds,
#: True when the branch-and-bound fallback rescued a failed primary).
_SOLVE_LOG: list[tuple[str, float, bool]] = []


def drain_solve_log() -> list[tuple[str, float, bool]]:
    """Return and clear the record of solves since the last drain."""
    drained = list(_SOLVE_LOG)
    _SOLVE_LOG.clear()
    return drained


def _record(solution: Solution, fell_back: bool) -> Solution:
    _SOLVE_LOG.append((solution.backend, solution.solve_seconds, fell_back))
    return solution


def solve(
    model: Model,
    backend: str = "scipy",
    time_limit: float | None = None,
    fallback: bool = True,
) -> Solution:
    """Solve an ILP model with the named backend.

    Args:
        model: the minimization model.
        backend: ``"scipy"`` (HiGHS) or ``"branch-bound"``.
        time_limit: optional wall-clock budget in seconds.
        fallback: retry a *failed* scipy solve (exception or ERROR status,
            not infeasibility) with the branch-and-bound backend.

    Raises:
        SolverError: for an unknown backend, or a backend-level failure
            with no fallback available.
    """
    if backend == "branch-bound":
        return _record(
            solve_with_branch_and_bound(model, time_limit=time_limit), False
        )
    if backend != "scipy":
        raise SolverError(
            f"unknown ILP backend {backend!r}; choose from {BACKENDS}"
        )
    try:
        solution = solve_with_scipy(model, time_limit=time_limit)
    except SolverError:
        if not fallback:
            raise
        solution = None
    if solution is not None and solution.status is not SolveStatus.ERROR:
        return _record(solution, False)
    if not fallback:
        return _record(solution, False)
    return _record(
        solve_with_branch_and_bound(model, time_limit=time_limit), True
    )
