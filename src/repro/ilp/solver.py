"""Backend dispatch for ILP solving.

``solve(model)`` picks the scipy/HiGHS backend by default (the fast exact
solver, standing in for Gurobi); ``backend="branch-bound"`` selects the
pure-Python solver (standing in for python-MIP), which is useful for
cross-checking optima and for environments without scipy's HiGHS build.
"""

from __future__ import annotations

from ..errors import SolverError
from .branch_bound import solve_with_branch_and_bound
from .model import Model
from .scipy_backend import solve_with_scipy
from .solution import Solution

BACKENDS = ("scipy", "branch-bound")


def solve(
    model: Model,
    backend: str = "scipy",
    time_limit: float | None = None,
) -> Solution:
    """Solve an ILP model with the named backend.

    Args:
        model: the minimization model.
        backend: ``"scipy"`` (HiGHS) or ``"branch-bound"``.
        time_limit: optional wall-clock budget in seconds.

    Raises:
        SolverError: for an unknown backend or a backend-level failure.
    """
    if backend == "scipy":
        return solve_with_scipy(model, time_limit=time_limit)
    if backend == "branch-bound":
        return solve_with_branch_and_bound(model, time_limit=time_limit)
    raise SolverError(f"unknown ILP backend {backend!r}; choose from {BACKENDS}")
