"""Backend dispatch for ILP solving.

``solve(model)`` picks the scipy/HiGHS backend by default (the fast exact
solver, standing in for Gurobi); ``backend="branch-bound"`` selects the
pure-Python solver (standing in for python-MIP), which is useful for
cross-checking optima and for environments without scipy's HiGHS build.

When the primary backend *fails* — a raised :class:`SolverError` or an
ERROR-status solution, e.g. a time budget expiring before any incumbent —
dispatch automatically retries with the branch-and-bound backend rather
than giving up (``fallback=False`` opts out).  A genuine INFEASIBLE answer
is not a failure and never triggers the fallback.

Time budgets compose with request deadlines: a ``time_limit`` of ``None``
or ``0`` uniformly means *no per-solve budget*, and when an ambient
:class:`~repro.deadline.Deadline` is installed the effective budget is
clamped to the remaining request time (an already-expired deadline raises
:class:`~repro.errors.DeadlineExceededError` before any backend runs).

Every completed solve is appended to a per-thread log so orchestration
layers (the compiler's stage accounting) can report which backend actually
produced each plan without threading extra return values through every
floorplanning helper; see :func:`drain_solve_log`.  The log is
thread-local because the compile service runs concurrent compiles on
worker threads, each of which drains its own solves.

For chaos testing, ``REPRO_CHAOS_WEDGE_ILP_S=<seconds>`` makes every
``solve()`` call hold the caller for that long and then fail with
:class:`SolverError`, simulating a wedged solver backend;
``REPRO_CHAOS_WEDGE_ILP_COUNT=<n>`` limits the wedge to the first *n*
solves of the process so breaker-recovery (open -> half-open -> closed)
can be observed end to end.
"""

from __future__ import annotations

import itertools
import os
import threading
import time

from ..deadline import current_deadline
from ..errors import SolverError
from .branch_bound import solve_with_branch_and_bound
from .model import Model
from .scipy_backend import solve_with_scipy
from .solution import Solution, SolveStatus

BACKENDS = ("scipy", "branch-bound")

#: Per-thread record of completed solves: (winning backend, solve seconds,
#: True when the branch-and-bound fallback rescued a failed primary).
_THREAD_STATE = threading.local()

#: Process-wide count of solve() calls, for the chaos wedge budget.
_WEDGE_COUNTER = itertools.count()


def _solve_log() -> list[tuple[str, float, bool]]:
    log = getattr(_THREAD_STATE, "solve_log", None)
    if log is None:
        log = _THREAD_STATE.solve_log = []
    return log


def drain_solve_log() -> list[tuple[str, float, bool]]:
    """Return and clear this thread's record of solves since last drain."""
    log = _solve_log()
    drained = list(log)
    log.clear()
    return drained


def _record(solution: Solution, fell_back: bool) -> Solution:
    _solve_log().append((solution.backend, solution.solve_seconds, fell_back))
    return solution


def _effective_time_limit(time_limit: float | None) -> float | None:
    """Normalize the budget and clamp it to the ambient deadline.

    ``0`` and ``None`` both mean "no per-solve budget" (the stage-timeout
    convention shared with the synthesis task timeout and the simulation
    watchdog).  With a deadline installed, whatever budget survives is
    capped at the request's remaining time.
    """
    if time_limit is not None and time_limit <= 0:
        time_limit = None
    deadline = current_deadline()
    if deadline is not None:
        deadline.check("ilp solve")
        time_limit = deadline.clamp(time_limit)
    return time_limit


def _chaos_wedge(time_limit: float | None) -> None:
    """Honour the injected-wedge knobs (chaos testing only)."""
    raw = os.environ.get("REPRO_CHAOS_WEDGE_ILP_S", "")
    if not raw:
        return
    try:
        wedge_s = float(raw)
    except ValueError:
        return
    count_raw = os.environ.get("REPRO_CHAOS_WEDGE_ILP_COUNT", "")
    if count_raw:
        try:
            if next(_WEDGE_COUNTER) >= int(count_raw):
                return  # wedge budget spent: the backend has "recovered"
        except ValueError:
            pass
    hold = wedge_s if time_limit is None else min(wedge_s, time_limit)
    if hold > 0:
        time.sleep(hold)
    raise SolverError(
        f"chaos: ILP backend wedged for {hold:g}s by REPRO_CHAOS_WEDGE_ILP_S"
    )


def solve(
    model: Model,
    backend: str = "scipy",
    time_limit: float | None = None,
    fallback: bool = True,
) -> Solution:
    """Solve an ILP model with the named backend.

    Args:
        model: the minimization model.
        backend: ``"scipy"`` (HiGHS) or ``"branch-bound"``.
        time_limit: optional wall-clock budget in seconds (``0``/``None``
            mean unlimited); always clamped to the ambient request
            deadline when one is installed.
        fallback: retry a *failed* scipy solve (exception or ERROR status,
            not infeasibility) with the branch-and-bound backend.

    Raises:
        SolverError: for an unknown backend, or a backend-level failure
            with no fallback available.
        DeadlineExceededError: when the ambient deadline has already
            expired.
    """
    time_limit = _effective_time_limit(time_limit)
    _chaos_wedge(time_limit)
    if backend == "branch-bound":
        return _record(
            solve_with_branch_and_bound(model, time_limit=time_limit), False
        )
    if backend != "scipy":
        raise SolverError(
            f"unknown ILP backend {backend!r}; choose from {BACKENDS}"
        )
    try:
        solution = solve_with_scipy(model, time_limit=time_limit)
    except SolverError:
        if not fallback:
            raise
        solution = None
    if solution is not None and solution.status is not SolveStatus.ERROR:
        return _record(solution, False)
    if not fallback:
        return _record(solution, False)
    return _record(
        solve_with_branch_and_bound(model, time_limit=time_limit), True
    )
