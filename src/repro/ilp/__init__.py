"""ILP modeling layer with interchangeable exact backends."""

from .model import Constraint, LinExpr, Model, Sense, Var, sum_expr
from .solution import Solution, SolveStatus
from .solver import BACKENDS, solve

__all__ = [
    "BACKENDS",
    "Constraint",
    "LinExpr",
    "Model",
    "Sense",
    "Solution",
    "SolveStatus",
    "Var",
    "solve",
    "sum_expr",
]
