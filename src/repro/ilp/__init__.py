"""ILP modeling layer with interchangeable exact backends."""

from .model import Constraint, LinExpr, Model, Sense, Var, sum_expr
from .solution import Solution, SolveStatus
from .solver import BACKENDS, drain_solve_log, solve

__all__ = [
    "BACKENDS",
    "drain_solve_log",
    "Constraint",
    "LinExpr",
    "Model",
    "Sense",
    "Solution",
    "SolveStatus",
    "Var",
    "solve",
    "sum_expr",
]
