"""Solver-independent solution objects."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .model import Model, Var


class SolveStatus(Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # stopped early with an incumbent
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"


@dataclass(slots=True)
class Solution:
    """The result of solving a :class:`~repro.ilp.model.Model`.

    ``values`` maps every model variable to its value; integer variables
    are rounded to exact integers by the backends.
    """

    status: SolveStatus
    objective: float = float("nan")
    values: dict[Var, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    backend: str = ""
    nodes_explored: int = 0

    @property
    def is_usable(self) -> bool:
        """True when a feasible assignment is available."""
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def __getitem__(self, var: Var) -> float:
        return self.values[var]

    def check_feasible(self, model: Model, tol: float = 1e-5) -> bool:
        """Verify every constraint of ``model`` holds under this solution."""
        if not self.is_usable:
            return False
        return all(c.satisfied(self.values, tol=tol) for c in model.constraints)
