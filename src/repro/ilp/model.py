"""A small integer-linear-programming modeling layer.

The paper solves its floorplanning formulations (Eqs. 1-4) with Gurobi or
python-MIP.  Neither is available offline, so this package provides its
own modeling objects (variables, linear expressions, constraints) and two
interchangeable backends: HiGHS via ``scipy.optimize.milp``, and a
pure-Python branch-and-bound over LP relaxations.

The modeling style mirrors the commercial APIs::

    m = Model("partition")
    x = {v: m.binary_var(f"x_{v}") for v in tasks}
    m.add_constraint(sum_expr(x.values()) == 1)
    m.minimize(sum_expr(cost[v] * x[v] for v in tasks))
    solution = solve(m)
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Union

from ..errors import SolverError

Number = Union[int, float]


@dataclass(frozen=True, slots=True)
class Var:
    """A decision variable.  Identity is by ``index`` within its model."""

    index: int
    name: str
    lower: float
    upper: float
    is_integer: bool

    # Arithmetic promotes to LinExpr.
    def _expr(self) -> "LinExpr":
        return LinExpr({self: 1.0})

    def __add__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        return self._expr() - other

    def __rsub__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        return (-1.0 * self._expr()) + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        return self._expr() * scalar

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self._expr() * -1.0

    def __le__(self, other: "Var | LinExpr | Number") -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other: "Var | LinExpr | Number") -> "Constraint":
        return self._expr() >= other

    def __eq__(self, other: object) -> "Constraint | bool":  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, int, float)):
            return self._expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return self.index


class Sense(Enum):
    """Constraint direction."""

    LE = "<="
    GE = ">="
    EQ = "=="


class LinExpr:
    """A linear expression: sum of coefficient * variable, plus a constant."""

    __slots__ = ("terms", "constant")

    def __init__(self, terms: dict[Var, float] | None = None, constant: float = 0.0):
        self.terms: dict[Var, float] = dict(terms or {})
        self.constant = float(constant)

    @staticmethod
    def _coerce(value: "Var | LinExpr | Number") -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return LinExpr({value: 1.0})
        if isinstance(value, (int, float)):
            return LinExpr(constant=float(value))
        raise TypeError(f"cannot use {type(value).__name__} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    def __add__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        rhs = self._coerce(other)
        out = self.copy()
        for var, coef in rhs.terms.items():
            out.terms[var] = out.terms.get(var, 0.0) + coef
        out.constant += rhs.constant
        return out

    __radd__ = __add__

    def __sub__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other: "Var | LinExpr | Number") -> "LinExpr":
        return self._coerce(other) + (self * -1.0)

    def __mul__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            raise TypeError("LinExpr can only be scaled by a number")
        return LinExpr(
            {var: coef * scalar for var, coef in self.terms.items()},
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other: "Var | LinExpr | Number") -> "Constraint":
        return Constraint(self - other, Sense.LE)

    def __ge__(self, other: "Var | LinExpr | Number") -> "Constraint":
        return Constraint(self - other, Sense.GE)

    def __eq__(self, other: object) -> "Constraint | bool":  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, int, float)):
            return Constraint(self - other, Sense.EQ)
        return NotImplemented

    def __hash__(self) -> int:  # required because __eq__ is overridden
        return id(self)

    def value(self, values: dict[Var, float]) -> float:
        """Evaluate under an assignment of variable values."""
        return self.constant + sum(
            coef * values.get(var, 0.0) for var, coef in self.terms.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


@dataclass(slots=True)
class Constraint:
    """``expr (<=|>=|==) 0`` in normalized form."""

    expr: LinExpr
    sense: Sense
    name: str = ""

    def satisfied(self, values: dict[Var, float], tol: float = 1e-6) -> bool:
        lhs = self.expr.value(values)
        if self.sense is Sense.LE:
            return lhs <= tol
        if self.sense is Sense.GE:
            return lhs >= -tol
        return abs(lhs) <= tol


def sum_expr(items: Iterable["Var | LinExpr | Number"]) -> LinExpr:
    """Sum an iterable of variables/expressions into one LinExpr.

    Unlike builtin :func:`sum`, this avoids quadratic re-copying and works
    without a start value.
    """
    out = LinExpr()
    for item in items:
        rhs = LinExpr._coerce(item)
        for var, coef in rhs.terms.items():
            out.terms[var] = out.terms.get(var, 0.0) + coef
        out.constant += rhs.constant
    return out


class Model:
    """A minimization ILP model."""

    def __init__(self, name: str = "model"):
        self.name = name
        self.variables: list[Var] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self._name_counter = itertools.count()

    # -- variables ------------------------------------------------------------

    def _add_var(self, name: str | None, lower: float, upper: float, is_integer: bool) -> Var:
        if lower > upper:
            raise SolverError(f"variable {name!r}: lower bound exceeds upper bound")
        var = Var(
            index=len(self.variables),
            name=name or f"v{next(self._name_counter)}",
            lower=lower,
            upper=upper,
            is_integer=is_integer,
        )
        self.variables.append(var)
        return var

    def binary_var(self, name: str | None = None) -> Var:
        """A 0/1 decision variable."""
        return self._add_var(name, 0.0, 1.0, is_integer=True)

    def integer_var(self, name: str | None = None, lower: float = 0.0, upper: float = float("inf")) -> Var:
        return self._add_var(name, lower, upper, is_integer=True)

    def continuous_var(self, name: str | None = None, lower: float = 0.0, upper: float = float("inf")) -> Var:
        return self._add_var(name, lower, upper, is_integer=False)

    # -- constraints & objective ------------------------------------------------

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise SolverError(
                "add_constraint expects a comparison of linear expressions "
                f"(got {type(constraint).__name__}); did a constraint reduce "
                "to a plain bool?"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def minimize(self, expr: "LinExpr | Var") -> None:
        self.objective = LinExpr._coerce(expr)

    def maximize(self, expr: "LinExpr | Var") -> None:
        self.objective = LinExpr._coerce(expr) * -1.0

    # -- stats -------------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self.variables if v.is_integer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Model({self.name!r}, vars={self.num_variables}, "
            f"constraints={self.num_constraints})"
        )
