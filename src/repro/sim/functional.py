"""Functional (data-level) execution of dataflow designs.

Latency-insensitive dataflow programs have Kahn-network semantics: the
values on every FIFO are a deterministic function of the inputs,
independent of timing, buffering, or partitioning.  For acyclic designs
the Kahn fixed point equals full-batch evaluation in topological order,
which is what this executor does — each task's Python body consumes its
complete input streams and produces its complete output streams.

This is the harness that validates the *compiler*: running the same
design before and after partitioning (the inserted ``net_tx``/``net_rx``
tasks forward tokens unchanged) must produce identical results, and app
outputs are checked against independent numpy/networkx goldens in the
test suite.

Cyclic designs (PageRank) iterate at the host level, exactly like the
paper's accelerator: one acyclic pass per sweep, converging across
invocations.

Task bodies have the signature ``func(inputs) -> outputs`` where
``inputs`` maps input-channel name to the list of tokens on that channel
and ``outputs`` maps output-channel names to token lists.  Any returned
key that is not an output channel is collected as a named *result* of the
task (how sink tasks expose final values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import SimulationError
from ..graph.analysis import condensation_order
from ..graph.graph import TaskGraph


@dataclass(slots=True)
class FunctionalResult:
    """Everything produced by one functional run."""

    tokens: dict[str, list] = field(default_factory=dict)
    results: dict[str, dict[str, Any]] = field(default_factory=dict)

    def result(self, task_name: str, key: str = "result") -> Any:
        try:
            return self.results[task_name][key]
        except KeyError:
            raise SimulationError(
                f"task {task_name!r} produced no result {key!r}; available: "
                f"{ {t: list(r) for t, r in self.results.items()} }"
            ) from None


def _identity_forward(
    graph: TaskGraph, task_name: str, inputs: dict[str, list]
) -> dict[str, list]:
    """Default behaviour for tasks without a body: forward/broadcast.

    Covers the compiler-inserted ``net_tx``/``net_rx`` tasks (one in, one
    out) and simple fan-out forwarders.
    """
    in_channels = graph.in_channels(task_name)
    out_channels = graph.out_channels(task_name)
    if len(in_channels) != 1:
        raise SimulationError(
            f"task {task_name!r} has no functional body and "
            f"{len(in_channels)} inputs; only 1-input tasks forward by default"
        )
    only = in_channels[0]
    stream = inputs[only.alias or only.name]
    return {(chan.alias or chan.name): list(stream) for chan in out_channels}


def execute(graph: TaskGraph, check_counts: bool = False) -> FunctionalResult:
    """Run the design functionally; returns all channel tokens and results.

    Args:
        graph: the design; every task either has a ``func`` body or is a
            single-input forwarder.
        check_counts: verify that the produced token count of each channel
            matches its declared ``tokens`` (when declared non-zero).

    Raises:
        SimulationError: on cyclic designs, missing outputs, or (with
            ``check_counts``) token-count mismatches.
    """
    order = condensation_order(graph)
    for component in order:
        if len(component) > 1:
            raise SimulationError(
                f"design {graph.name!r} has a dependency cycle through "
                f"{sorted(component)}; iterate it at the host level "
                "(see repro.apps.pagerank for the pattern)"
            )

    out = FunctionalResult()
    for component in order:
        (task_name,) = component
        task = graph.task(task_name)
        inputs = {}
        for chan in graph.in_channels(task_name):
            if chan.name not in out.tokens:
                raise SimulationError(
                    f"channel {chan.name!r} consumed before production; "
                    "topological order violated (is the graph malformed?)"
                )
            inputs[chan.alias or chan.name] = out.tokens[chan.name]

        if task.func is not None:
            produced = task.func(inputs)
            if produced is None:
                produced = {}
        elif graph.out_channels(task_name) or graph.in_channels(task_name):
            if not graph.in_channels(task_name):
                raise SimulationError(
                    f"source task {task_name!r} needs a functional body"
                )
            produced = _identity_forward(graph, task_name, inputs)
        else:
            produced = {}

        if not isinstance(produced, dict):
            raise SimulationError(
                f"task {task_name!r} returned {type(produced).__name__}, "
                "expected a dict of channel/result names"
            )

        # Producers address channels by their logical (alias) name.
        by_logical: dict[str, list[str]] = {}
        for chan in graph.out_channels(task_name):
            by_logical.setdefault(chan.alias or chan.name, []).append(chan.name)
        for key, value in produced.items():
            if key in by_logical:
                for real_name in by_logical[key]:
                    out.tokens[real_name] = list(value)
            else:
                out.results.setdefault(task_name, {})[key] = value
        missing = set(by_logical) - set(produced)
        if missing:
            raise SimulationError(
                f"task {task_name!r} did not produce output channels "
                f"{sorted(missing)}"
            )
        if check_counts:
            for chan in graph.out_channels(task_name):
                if chan.tokens and len(out.tokens[chan.name]) != int(chan.tokens):
                    raise SimulationError(
                        f"channel {chan.name!r}: declared {chan.tokens:g} "
                        f"tokens but produced {len(out.tokens[chan.name])}"
                    )
    return out
