"""Simulation: discrete-event performance model and functional executor."""

from .engine import (
    Acquire,
    Environment,
    Get,
    Process,
    Put,
    Timeout,
    TokenBuffer,
    UnitResource,
)
from .execution import SimulationConfig, SimulationResult, TaskStats, simulate
from .functional import FunctionalResult, execute
from .memory import PortBandwidth, effective_port_bandwidths, task_memory_seconds
from .trace import (
    DeviceUtilization,
    critical_tasks,
    device_utilization,
    render_gantt,
    utilization_report,
)

__all__ = [
    "Acquire",
    "Environment",
    "FunctionalResult",
    "Get",
    "PortBandwidth",
    "Process",
    "Put",
    "SimulationConfig",
    "SimulationResult",
    "TaskStats",
    "Timeout",
    "TokenBuffer",
    "UnitResource",
    "DeviceUtilization",
    "critical_tasks",
    "device_utilization",
    "effective_port_bandwidths",
    "render_gantt",
    "utilization_report",
    "execute",
    "simulate",
    "task_memory_seconds",
]
