"""Execution traces and utilization reports for simulation results.

The raw :class:`~repro.sim.execution.SimulationResult` carries per-task
start/finish/busy times; this module turns them into the views an
engineer debugging a partition actually reads:

* per-device utilization (busy time / makespan, aggregated over tasks);
* the critical chain — which tasks finished last and what they waited on;
* an ASCII Gantt chart of task activity spans, grouped by device, which
  makes serialization patterns (the stencil's idle FPGAs, AlveoLink
  contention) visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass

from .execution import SimulationResult


@dataclass(frozen=True, slots=True)
class DeviceUtilization:
    """Aggregate activity of one device during a run."""

    device: int
    num_tasks: int
    busy_s: float
    first_start_s: float
    last_finish_s: float
    makespan_s: float

    @property
    def utilization(self) -> float:
        """Mean per-task busy fraction over the whole run."""
        if self.makespan_s <= 0 or self.num_tasks == 0:
            return 0.0
        return self.busy_s / (self.makespan_s * self.num_tasks)

    @property
    def idle_before_start_s(self) -> float:
        """How long the device waited before its first task began."""
        return self.first_start_s


def device_utilization(result: SimulationResult) -> dict[int, DeviceUtilization]:
    """Per-device activity summary of one run."""
    by_device: dict[int, list] = {}
    for stat in result.task_stats.values():
        by_device.setdefault(stat.device, []).append(stat)
    out: dict[int, DeviceUtilization] = {}
    for device, stats in sorted(by_device.items()):
        out[device] = DeviceUtilization(
            device=device,
            num_tasks=len(stats),
            busy_s=sum(s.busy_s for s in stats),
            first_start_s=min(s.start_s for s in stats),
            last_finish_s=max(s.finish_s for s in stats),
            makespan_s=result.latency_s,
        )
    return out


def critical_tasks(result: SimulationResult, count: int = 5) -> list[str]:
    """The tasks that finished last — the makespan's tail."""
    ordered = sorted(
        result.task_stats.values(), key=lambda s: s.finish_s, reverse=True
    )
    return [s.name for s in ordered[:count]]


def render_gantt(
    result: SimulationResult,
    width: int = 72,
    max_tasks_per_device: int = 12,
) -> str:
    """An ASCII Gantt chart: one row per task, grouped by device.

    ``.`` is idle-before-start, ``#`` spans start to finish, with the
    span clipped to ``width`` columns over the full makespan.
    """
    if result.latency_s <= 0:
        return "(empty run)"
    scale = width / result.latency_s
    lines = [
        f"makespan {result.latency_ms:.4f} ms at {result.frequency_mhz:.0f} MHz",
    ]
    by_device: dict[int, list] = {}
    for stat in result.task_stats.values():
        by_device.setdefault(stat.device, []).append(stat)
    name_width = min(
        28, max((len(s.name) for s in result.task_stats.values()), default=8)
    )
    for device, stats in sorted(by_device.items()):
        lines.append(f"-- FPGA{device} " + "-" * (width + name_width - 8))
        ordered = sorted(stats, key=lambda s: (s.start_s, s.name))
        shown = ordered[:max_tasks_per_device]
        for stat in shown:
            begin = int(stat.start_s * scale)
            end = max(begin + 1, int(stat.finish_s * scale))
            end = min(end, width)
            bar = "." * begin + "#" * (end - begin)
            bar = bar.ljust(width)
            lines.append(f"{stat.name[:name_width]:<{name_width}} |{bar}|")
        hidden = len(ordered) - len(shown)
        if hidden > 0:
            lines.append(f"{'':<{name_width}}  ... {hidden} more task(s)")
    return "\n".join(lines)


def utilization_report(result: SimulationResult) -> str:
    """A human-readable per-device utilization summary."""
    lines = [f"run {result.design_name!r} ({result.flow}):"]
    for device, util in device_utilization(result).items():
        lines.append(
            f"  FPGA{device}: {util.num_tasks} tasks, "
            f"busy {util.busy_s * 1e3:.3f} ms, "
            f"first start {util.first_start_s * 1e3:.3f} ms, "
            f"utilization {util.utilization:.1%}"
        )
    tail = ", ".join(critical_tasks(result, 3))
    lines.append(f"  critical tail: {tail}")
    if result.link_busy_s:
        for link, busy in sorted(result.link_busy_s.items()):
            lines.append(f"  {link}: busy {busy * 1e3:.3f} ms")
    return "\n".join(lines)
