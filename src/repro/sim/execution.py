"""Performance simulation of a compiled design.

Each task of the post-communication-insertion graph becomes a process in
the discrete-event engine.  Execution is chunked: the kernel's total work
is split into ``config.chunks`` batches that stream through the FIFOs, so
producers and consumers overlap exactly as pipelined hardware does, and
backpressure emerges from bounded buffer capacities.

Per chunk, a task:

1. gets one chunk from every input FIFO,
2. advances time by its service latency — the max of its compute time at
   the design clock and its HBM streaming time at the effective port
   bandwidth (tasks are either compute- or memory-bound per chunk),
3. puts one chunk into every output FIFO.

Inter-FPGA sender tasks additionally hold the physical link (a unit
resource shared by every stream on the same device pair) for the chunk's
wire time, which is what creates the AlveoLink contention the paper
blames for the CNN's sub-linear scaling.

The result of a run is a :class:`SimulationResult` with the end-to-end
latency and per-task/per-link statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.plan import CompiledDesign
from ..deadline import current_deadline
from ..errors import SimulationError
from ..faults.scenario import FaultScenario
from ..graph.analysis import bfs_depth, strongly_connected_components
from ..graph.task import Task
from . import service as svc
from .engine import Acquire, Environment, Get, Put, TokenBuffer, UnitResource


@dataclass(slots=True)
class SimulationConfig:
    """Knobs for the performance simulation."""

    #: Number of streaming batches the kernel's work is split into.
    chunks: int = 32
    #: Fixed per-chunk scheduling overhead for tasks with no work model
    #: (pure routing logic), in cycles.
    default_chunk_cycles: float = 64.0
    #: AlveoLink packet size used for wire-time calculations.
    packet_bytes: int = 4096
    #: When True (matching the paper's testbed), a sender accumulates its
    #: whole stream before the DMA engine ships it, so an inter-FPGA
    #: boundary is a serialization point.  This is what leaves downstream
    #: FPGAs idle in the stencil chain (Section 5.2) and creates AlveoLink
    #: contention for the CNN (Section 5.5).  False models a fully
    #: streaming NIC, the ablation.
    bulk_network_transfers: bool = True
    #: Streams below this volume bypass the bulk-DMA path and stream
    #: chunk-by-chunk: small messages (halo rows, top-K candidates) go
    #: straight through AlveoLink without a device-memory staging pass.
    bulk_threshold_bytes: float = 4e6
    #: Watchdog: abort with :class:`~repro.errors.WatchdogError` if the
    #: simulated clock passes this many seconds.  ``None`` or ``0``
    #: disables (the stage-timeout convention shared with the synthesis
    #: task timeout and ILP budget); the fault CLI sets a budget so a
    #: pathological scenario terminates with a diagnosis instead of
    #: spinning.
    max_sim_seconds: float | None = None
    #: Watchdog backstop on dispatched simulation events.  Healthy runs
    #: of the paper's apps use a few hundred thousand events; this default
    #: only trips on runaway scenarios.
    max_events: int | None = 50_000_000


@dataclass(slots=True)
class TaskStats:
    """Per-task timing collected during a run."""

    name: str
    device: int
    start_s: float = 0.0
    finish_s: float = 0.0
    busy_s: float = 0.0

    @property
    def span_s(self) -> float:
        return self.finish_s - self.start_s


@dataclass(slots=True)
class SimulationResult:
    """Outcome of one performance simulation."""

    design_name: str
    flow: str
    latency_s: float
    frequency_mhz: float
    task_stats: dict[str, TaskStats] = field(default_factory=dict)
    link_busy_s: dict[str, float] = field(default_factory=dict)
    inter_fpga_bytes: float = 0.0
    #: Wall-clock seconds the discrete-event run took (not simulated
    #: time); the cache layer re-earns this on every hit.
    sim_seconds: float = 0.0

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3

    def summary(self) -> dict:
        """A deterministic JSON-able digest of the simulated outcome.

        Everything here is a pure function of the compiled design and the
        simulation config — wall-clock fields are excluded — so a cached
        result and a fresh run of the same inputs compare equal.
        """
        return {
            "design_name": self.design_name,
            "flow": self.flow,
            "latency_s": self.latency_s,
            "frequency_mhz": self.frequency_mhz,
            "inter_fpga_bytes": self.inter_fpga_bytes,
            "task_finish_s": {
                name: stat.finish_s for name, stat in sorted(self.task_stats.items())
            },
            "link_busy_s": dict(sorted(self.link_busy_s.items())),
        }

    def device_finish_s(self, device: int) -> float:
        """When the last task of one device finished."""
        return max(
            (s.finish_s for s in self.task_stats.values() if s.device == device),
            default=0.0,
        )

    def speedup_over(self, baseline: "SimulationResult") -> float:
        if self.latency_s <= 0:
            raise SimulationError("cannot compute speed-up of a zero latency")
        return baseline.latency_s / self.latency_s


def _check_plan_against_faults(design: CompiledDesign, faults: FaultScenario) -> None:
    """Reject simulating a plan that uses hardware the scenario killed."""
    dead = [
        d for d in sorted(set(design.comm.assignment.values()))
        if faults.device_failed(d)
    ]
    if dead:
        raise SimulationError(
            f"design {design.name!r} places tasks on failed device(s) "
            f"{dead} under scenario {faults.name!r}; re-compile with "
            f"faults= to re-plan on the survivors"
        )
    down = sorted(
        {
            (min(s.src_device, s.dst_device), max(s.src_device, s.dst_device))
            for s in design.streams
            if faults.link_down(s.src_device, s.dst_device)
        }
    )
    if down:
        pairs = ", ".join(f"{a}<->{b}" for a, b in down)
        raise SimulationError(
            f"design {design.name!r} streams over down link(s) {pairs} "
            f"under scenario {faults.name!r}; re-compile with faults= to "
            f"route around them"
        )


def simulate(
    design: CompiledDesign,
    config: SimulationConfig | None = None,
    faults: FaultScenario | None = None,
) -> SimulationResult:
    """Run the chunked dataflow simulation of a compiled design.

    With a ``faults`` scenario, every wire segment uses the degraded
    transfer models: per-link loss inflates wire time by the expected
    go-back-N retransmissions (plus MPI backoff on the inter-node path)
    and bandwidth factors scale the sustained rate.  Faults are looked up
    by the stream's *endpoint* device pair — for multi-hop streams this
    approximates the path by its endpoints.  Simulating a design whose
    plan uses hardware the scenario declares dead (a failed device or a
    stream over a down link) raises :class:`SimulationError` immediately:
    re-compile with ``faults=`` to re-plan around them instead.  A healthy
    or absent scenario is bit-for-bit identical to a plain run.
    """
    wall_start = time.perf_counter()
    deadline = current_deadline()
    if deadline is not None:
        deadline.check("simulation")
    config = config or SimulationConfig()
    if config.chunks < 1:
        raise SimulationError("need at least one chunk")
    if faults is not None and faults.is_healthy:
        faults = None
    graph = design.graph
    if faults is not None:
        _check_plan_against_faults(design, faults)
    env = Environment()
    frequency_hz = design.frequency_mhz * 1e6
    cycle_s = 1.0 / frequency_hz

    # Effective HBM bandwidth per port, per device (shared with the
    # static analyzer through :mod:`repro.sim.service`).
    port_bw = svc.design_port_bandwidths(design)

    # FIFO buffers, measured in chunks.  Pipeline registers add capacity.
    # Channels that close a dependency cycle (PageRank's PE <-> controller
    # loops) start full: a latency-insensitive loop is live exactly when
    # its FIFOs carry initial credit, and the designs the paper evaluates
    # initialize their feedback FIFOs the same way.
    depth_order = bfs_depth(graph)
    in_scc: set[str] = set()
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            in_scc.update(component)
    # Capacity is one full kernel invocation (all chunks): senders that
    # accumulate in device memory (the bulk-DMA barriers) can always run
    # to completion, which makes the simulation deadlock-free for DAGs.
    # Sub-invocation backpressure is not modeled — per-chunk service
    # times already carry every throughput effect we report.
    buffers: dict[str, TokenBuffer] = {}
    for chan in graph.channels():
        capacity = float(max(config.chunks, 2))
        is_back_edge = (
            chan.src in in_scc
            and chan.dst in in_scc
            and depth_order[chan.src] >= depth_order[chan.dst]
        )
        initial = capacity if is_back_edge else 0.0
        buffers[chan.name] = env.buffer(chan.name, capacity=capacity, initial=initial)

    # One physical link resource per connected device pair — except that
    # all traffic between two server nodes funnels through ONE host-side
    # 10 Gbps Ethernet link (Section 5.7), so every cross-node pair maps
    # to the same shared resource.
    links: dict[tuple, UnitResource] = {}
    stream_by_tx: dict[str, object] = {}

    def link_key(stream):
        return svc.link_key(design, stream)

    for stream in design.streams:
        key = link_key(stream)
        if key not in links:
            links[key] = env.resource(svc.link_label(key))
        stream_by_tx[f"{stream.original_channel}__tx"] = stream

    stats: dict[str, TaskStats] = {}
    assignment = design.comm.assignment
    stream_by_rx = {
        f"{s.original_channel}__rx": s for s in design.streams
    }

    def is_bulk(stream) -> bool:
        return svc.is_bulk_stream(
            stream, config.bulk_network_transfers, config.bulk_threshold_bytes
        )

    def wire_seconds(stream, volume_bytes: float) -> float:
        return svc.wire_seconds(stream, volume_bytes, config.packet_bytes, faults)

    def wire_setup_seconds(stream) -> float:
        return svc.wire_setup_seconds(stream, config.packet_bytes)

    def wire_stream_seconds(stream, chunk_bytes: float) -> float:
        return svc.wire_stream_seconds(stream, chunk_bytes, config.packet_bytes, faults)

    def task_process(task: Task):
        stat = stats[task.name]
        inputs = [buffers[c.name] for c in graph.in_channels(task.name)]
        outputs = [buffers[c.name] for c in graph.out_channels(task.name)]
        stream = stream_by_tx.get(task.name)
        service_s = svc.task_service_seconds(
            task, port_bw, config.chunks, cycle_s, config.default_chunk_cycles
        )
        startup_s = (task.work.startup_cycles * cycle_s) if task.work else 0.0
        link = None
        chunk_bytes = 0.0
        if stream is not None:
            link = links[link_key(stream)]
            chunk_bytes = stream.volume_bytes / config.chunks

        rx_stream = stream_by_rx.get(task.name)
        bulk = rx_stream is not None and is_bulk(rx_stream)
        if task.kind == "net_rx" and bulk:
            # DMA lands the whole stream in device memory before the
            # consumer kernel is launched; downstream compute does not
            # overlap the wire (Section 5.2's idle-FPGA behaviour).
            for _ in range(config.chunks):
                for buf in inputs:
                    yield Get(buf, 1.0)
            stat.start_s = env.now
            begin = env.now
            if service_s > 0:
                yield env.timeout(service_s * config.chunks)
            stat.busy_s += env.now - begin
            for _ in range(config.chunks):
                for buf in outputs:
                    yield Put(buf, 1.0)
            stat.finish_s = env.now
            return

        if link is not None and is_bulk(stream):
            # DMA-style sender: wait for the complete stream, then ship it
            # as one bulk transfer while holding the physical link.
            for _ in range(config.chunks):
                for buf in inputs:
                    yield Get(buf, 1.0)
            stat.start_s = env.now
            begin = env.now
            yield Acquire(link)
            wire = wire_seconds(stream, stream.volume_bytes)
            yield env.timeout(max(service_s * config.chunks, wire))
            env.release(link)
            stat.busy_s += env.now - begin
            for _ in range(config.chunks):
                for buf in outputs:
                    yield Put(buf, 1.0)
            stat.finish_s = env.now
            return

        first = True
        for _ in range(config.chunks):
            for buf in inputs:
                yield Get(buf, 1.0)
            if first:
                stat.start_s = env.now
                if startup_s > 0:
                    yield env.timeout(startup_s)
                if link is not None:
                    # Message setup + propagation, once per stream; the
                    # per-chunk occupancy below is pure wire time.
                    yield env.timeout(wire_setup_seconds(stream))
                first = False
            begin = env.now
            if link is not None:
                yield Acquire(link)
                wire = wire_stream_seconds(stream, chunk_bytes)
                yield env.timeout(max(service_s, wire))
                env.release(link)
            elif service_s > 0:
                yield env.timeout(service_s)
            stat.busy_s += env.now - begin
            for buf in outputs:
                yield Put(buf, 1.0)
        stat.finish_s = env.now

    for task in graph.tasks():
        stats[task.name] = TaskStats(name=task.name, device=assignment[task.name])
        env.process(task.name, task_process(task))

    latency = env.run(
        max_sim_seconds=config.max_sim_seconds, max_events=config.max_events
    )
    return SimulationResult(
        design_name=design.name,
        flow=design.flow,
        latency_s=latency,
        frequency_mhz=design.frequency_mhz,
        task_stats=stats,
        link_busy_s={r.name: r.total_busy_time for r in links.values()},
        inter_fpga_bytes=design.inter_fpga_volume_bytes,
        sim_seconds=time.perf_counter() - wall_start,
    )
