"""The per-chunk service-time model shared by simulation and analysis.

The discrete-event simulator (:mod:`repro.sim.execution`) and the static
performance analyzer (:mod:`repro.analyze`) must agree *exactly* on what
one chunk of work costs — a task's compute time at the design clock, its
HBM streaming time at the effective port bandwidth, and a cut stream's
wire occupancy under the AlveoLink / inter-node models.  Both layers
import these formulas from here, so the static bounds cannot silently
drift from what the simulator charges: the oracle cross-check in
:mod:`repro.analyze.oracle` (and ``tests/test_analyze_oracle.py``) then
verifies the *composition* of these terms, not their definitions.

Everything in this module is a pure function of the compiled design, the
simulation config, and an optional fault scenario.
"""

from __future__ import annotations

from ..cluster.links import LinkKind
from ..core.comm_insertion import InterFpgaStream
from ..core.plan import CompiledDesign
from ..faults.scenario import FaultScenario, LinkFault
from ..graph.task import Task
from ..network.alveolink import ALVEOLINK
from ..network.internode import INTER_NODE_PATH
from ..network.retransmission import expected_transmissions
from .memory import PortBandwidth, effective_port_bandwidths, task_memory_seconds

#: A physical link identity: all traffic between two server nodes funnels
#: through one host-side Ethernet pair, same-node traffic through the
#: QSFP pair of the two devices (Section 5.7).
LinkKey = tuple[str, int, int]


def chunk_cycles(task: Task, chunks: int, default_chunk_cycles: float) -> float:
    """Cycles one chunk of ``task``'s work costs at the design clock."""
    if task.work is not None and task.work.compute_cycles > 0:
        return task.work.compute_cycles / chunks
    return default_chunk_cycles / chunks * 32.0


def design_port_bandwidths(
    design: CompiledDesign,
) -> dict[tuple[str, str], PortBandwidth]:
    """Effective HBM bandwidth of every port, under the design's binding.

    Contention is already folded in: ports sharing a pseudo-channel split
    its streaming bandwidth demand-proportionally.
    """
    port_bw: dict[tuple[str, str], PortBandwidth] = {}
    for device, binding in design.hbm_bindings.items():
        part = design.cluster.device(device).part
        tasks = [design.graph.task(n) for n in design.device_tasks(device)]
        port_bw.update(
            effective_port_bandwidths(
                tasks, binding, part, design.per_device_frequency_mhz[device]
            )
        )
    return port_bw


def task_compute_seconds(
    task: Task,
    chunks: int,
    cycle_s: float,
    default_chunk_cycles: float,
) -> float:
    """Per-chunk compute time of one task at the design clock."""
    return chunk_cycles(task, chunks, default_chunk_cycles) * cycle_s


def task_service_seconds(
    task: Task,
    port_bw: dict[tuple[str, str], PortBandwidth],
    chunks: int,
    cycle_s: float,
    default_chunk_cycles: float,
) -> float:
    """Per-chunk service latency: max of compute and HBM streaming time.

    Tasks are either compute- or memory-bound per chunk; this is the
    service time the simulator's per-chunk loop advances by, and the
    initiation interval the static throughput bound propagates.
    """
    compute_s = task_compute_seconds(task, chunks, cycle_s, default_chunk_cycles)
    memory_s = task_memory_seconds(task, port_bw) / chunks
    return max(compute_s, memory_s)


def link_key(design: CompiledDesign, stream: InterFpgaStream) -> LinkKey:
    """The physical link resource one stream's transfers serialize on."""
    src_node = design.cluster.device(stream.src_device).node
    dst_node = design.cluster.device(stream.dst_device).node
    if src_node != dst_node:
        return ("host", min(src_node, dst_node), max(src_node, dst_node))
    return (
        "qsfp",
        min(stream.src_device, stream.dst_device),
        max(stream.src_device, stream.dst_device),
    )


def link_label(key: LinkKey) -> str:
    """The resource name the simulator registers for a link key."""
    return "link_" + "_".join(map(str, key))


def is_bulk_stream(
    stream: InterFpgaStream,
    bulk_network_transfers: bool,
    bulk_threshold_bytes: float,
) -> bool:
    """Whether a stream rides the bulk-DMA path (a serialization point)."""
    return bulk_network_transfers and stream.volume_bytes >= bulk_threshold_bytes


def stream_fault(
    stream: InterFpgaStream, faults: FaultScenario | None
) -> LinkFault | None:
    """The scenario's fault on a stream's endpoint pair, or None."""
    if faults is None:
        return None
    fault = faults.link_fault(stream.src_device, stream.dst_device)
    return None if fault.is_healthy else fault


def wire_seconds(
    stream: InterFpgaStream,
    volume_bytes: float,
    packet_bytes: int,
    faults: FaultScenario | None = None,
) -> float:
    """Full message cost: setup + per-hop latency + wire time."""
    fault = stream_fault(stream, faults)
    if stream.medium.kind is LinkKind.INTER_NODE_10G:
        if fault is None:
            return INTER_NODE_PATH.transfer_seconds(volume_bytes)
        return INTER_NODE_PATH.transfer_seconds(
            volume_bytes,
            loss_rate=fault.loss_rate,
            bandwidth_factor=fault.bandwidth_factor,
        )
    if fault is None:
        return ALVEOLINK.transfer_seconds(
            volume_bytes, packet_bytes=packet_bytes, hops=stream.hops
        )
    return ALVEOLINK.transfer_seconds(
        volume_bytes,
        packet_bytes=packet_bytes,
        hops=stream.hops,
        loss_rate=fault.loss_rate,
        bandwidth_factor=fault.bandwidth_factor,
    )


def wire_setup_seconds(stream: InterFpgaStream, packet_bytes: int) -> float:
    """One-time message setup + propagation (paid once per stream)."""
    if stream.medium.kind is LinkKind.INTER_NODE_10G:
        return INTER_NODE_PATH.transfer_seconds(1.0)
    return ALVEOLINK.transfer_seconds(1e-9, packet_bytes=packet_bytes, hops=stream.hops)


def wire_stream_seconds(
    stream: InterFpgaStream,
    chunk_bytes: float,
    packet_bytes: int,
    faults: FaultScenario | None = None,
) -> float:
    """Per-chunk wire occupancy in steady streaming (no setup)."""
    if chunk_bytes <= 0:
        return 0.0
    if stream.medium.kind is LinkKind.INTER_NODE_10G:
        seconds = chunk_bytes * 8.0 / (INTER_NODE_PATH.wire_gbps * 1e9)
        window = 1
    else:
        gbps = ALVEOLINK.effective_gbps(packet_bytes)
        seconds = chunk_bytes * 8.0 / (gbps * 1e9)
        window = ALVEOLINK.recommended_fifo_depth
    fault = stream_fault(stream, faults)
    if fault is not None:
        seconds *= expected_transmissions(fault.loss_rate, window)
        seconds /= fault.bandwidth_factor
    return seconds
