"""Memory-system bandwidth models for the performance simulator.

The paper's performance story is mostly a bandwidth story:

* an HBM port moves at most ``width_bits * f_clk`` bits/s — the KNN
  motivating example widens ports from 256 to 512 bits precisely because
  256 bits at the achieved clock saturates only half a pseudo-channel;
* a pseudo-channel delivers ~14.4 GB/s (460 GB/s over 32 channels); ports
  sharing a channel split it — this is what the HBM binding explorer
  avoids;
* on-chip SRAM is effectively free by comparison (35 TB/s), so only HBM
  traffic is charged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.hbm_binding import HBMBinding
from ..devices.fpga import FPGAPart
from ..graph.task import Task

@dataclass(frozen=True, slots=True)
class PortBandwidth:
    """Resolved effective bandwidth for one HBM port."""

    task: str
    port: str
    channel: int | None
    gbps: float


def effective_port_bandwidths(
    tasks: list[Task],
    binding: HBMBinding,
    part: FPGAPart,
    frequency_mhz: float,
) -> dict[tuple[str, str], PortBandwidth]:
    """Effective Gbps for every HBM port of the given (placed) tasks.

    A port's own ceiling is ``width x f_clk``; a pseudo-channel delivers
    its effective streaming bandwidth, arbitrated *demand-proportionally*
    among the ports bound to it (a wide port sharing with a narrow one
    keeps most of the channel, as real round-robin-by-beat arbitration
    gives it).
    """
    per_channel = part.hbm_channel_effective_gbps
    demand_by_channel: dict[int, float] = {}
    port_demand: dict[tuple[str, str], float] = {}
    for task in tasks:
        for port in task.hbm_ports:
            key = (task.name, port.name)
            demand = port.width_bits * frequency_mhz * 1e6 / 1e9
            port_demand[key] = demand
            channel = binding.binding.get(key)
            if channel is not None:
                demand_by_channel[channel] = (
                    demand_by_channel.get(channel, 0.0) + demand
                )

    out: dict[tuple[str, str], PortBandwidth] = {}
    for task in tasks:
        for port in task.hbm_ports:
            key = (task.name, port.name)
            channel = binding.binding.get(key)
            port_gbps = port_demand[key]
            if channel is None or per_channel <= 0:
                share = port_gbps
            else:
                total = demand_by_channel.get(channel, port_gbps)
                if total <= per_channel:
                    share = port_gbps
                else:
                    share = per_channel * port_gbps / total
            out[key] = PortBandwidth(
                task=task.name,
                port=port.name,
                channel=channel,
                gbps=min(port_gbps, share),
            )
    return out


def task_memory_seconds(
    task: Task,
    port_bandwidths: dict[tuple[str, str], PortBandwidth],
) -> float:
    """Time to move one task's full HBM traffic at its effective rates.

    Ports stream concurrently, so the task's memory time is its slowest
    port, not the sum.
    """
    times = []
    for port in task.hbm_ports:
        if port.volume_bytes <= 0:
            continue
        bw = port_bandwidths.get((task.name, port.name))
        gbps = bw.gbps if bw is not None else port.width_bits / 8.0
        times.append(port.volume_bytes * 8.0 / (gbps * 1e9))
    return max(times, default=0.0)
