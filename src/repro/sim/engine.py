"""A minimal discrete-event simulation engine.

The performance simulator needs processes (generators) that wait on time
and on each other through bounded token buffers.  This is a small,
dependency-free core in the style of SimPy:

* :class:`Environment` owns the event queue and the clock;
* processes are Python generators that ``yield`` requests;
* :class:`TokenBuffer` is a bounded counter with blocking ``put``/``get``
  — the simulation-level view of a FIFO's occupancy;
* :class:`UnitResource` is a single-server resource used to serialize
  transfers over a shared physical link.

Yieldable requests:  ``env.timeout(seconds)``, ``buffer.get(n)``,
``buffer.put(n)``, ``resource.acquire()`` (paired with ``release()``).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Generator

from ..deadline import current_deadline
from ..errors import DeadlockError, SimulationError, WatchdogError

#: How many dispatched events pass between ambient-deadline checks; the
#: clock read is cheap but not free, and event dispatch is the hot loop.
_DEADLINE_CHECK_EVERY = 2048

#: The generator type processes must have.
ProcessBody = Generator["Request", None, None]


class Request:
    """Base class for everything a process can yield."""

    __slots__ = ("_process",)


class Timeout(Request):
    """Resume the process after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay


class _BufferOp(Request):
    __slots__ = ("buffer", "amount")

    def __init__(self, buffer: "TokenBuffer", amount: float):
        if amount < 0:
            raise SimulationError(f"negative buffer operation {amount}")
        self.buffer = buffer
        self.amount = amount


class Get(_BufferOp):
    """Block until ``amount`` tokens can be removed from the buffer."""


class Put(_BufferOp):
    """Block until ``amount`` tokens fit into the buffer."""


class Acquire(Request):
    """Block until the unit resource is free, then hold it."""

    __slots__ = ("resource",)

    def __init__(self, resource: "UnitResource"):
        self.resource = resource


class Process:
    """A running generator inside the environment."""

    __slots__ = ("name", "body", "finished", "waiting_on")

    def __init__(self, name: str, body: ProcessBody):
        self.name = name
        self.body = body
        self.finished = False
        self.waiting_on: Request | None = None


class TokenBuffer:
    """A bounded token counter modeling FIFO occupancy.

    ``capacity`` may be ``float('inf')`` for unbounded buffers.  Amounts
    are floats so chunked simulations can use fractional token batches.
    """

    __slots__ = ("name", "capacity", "level", "_getters", "_putters",
                 "total_put", "total_got")

    def __init__(self, name: str, capacity: float = float("inf"), initial: float = 0.0):
        if capacity <= 0:
            raise SimulationError(f"buffer {name!r}: capacity must be positive")
        if initial < 0 or initial > capacity:
            raise SimulationError(f"buffer {name!r}: bad initial level")
        self.name = name
        self.capacity = capacity
        self.level = initial
        self._getters: deque[tuple[Process, float]] = deque()
        self._putters: deque[tuple[Process, float]] = deque()
        self.total_put = 0.0
        self.total_got = 0.0

    def can_get(self, amount: float) -> bool:
        return self.level + 1e-12 >= amount

    def can_put(self, amount: float) -> bool:
        return self.level + amount <= self.capacity + 1e-12


class UnitResource:
    """A single-server resource (e.g. one physical network link)."""

    __slots__ = ("name", "busy", "_waiters", "total_busy_time", "_acquired_at")

    def __init__(self, name: str):
        self.name = name
        self.busy = False
        self._waiters: deque[Process] = deque()
        self.total_busy_time = 0.0
        self._acquired_at = 0.0


class Environment:
    """The simulation kernel: clock, event queue, process scheduling."""

    def __init__(self):
        self.now = 0.0
        self._queue: list[tuple[float, int, Process]] = []
        self._counter = itertools.count()
        self._processes: list[Process] = []
        self._resources: list[UnitResource] = []

    # -- construction ------------------------------------------------------------

    def process(self, name: str, body: ProcessBody) -> Process:
        """Register a generator as a process; it starts at time 0."""
        proc = Process(name, body)
        self._processes.append(proc)
        self._schedule(proc, 0.0)
        return proc

    def buffer(self, name: str, capacity: float = float("inf"), initial: float = 0.0) -> TokenBuffer:
        return TokenBuffer(name, capacity, initial)

    def resource(self, name: str) -> UnitResource:
        res = UnitResource(name)
        self._resources.append(res)
        return res

    def timeout(self, delay: float) -> Timeout:
        return Timeout(delay)

    # -- kernel -------------------------------------------------------------------

    def _schedule(self, proc: Process, delay: float) -> None:
        heapq.heappush(self._queue, (self.now + delay, next(self._counter), proc))

    def _step_process(self, proc: Process) -> None:
        """Advance one process until it blocks or finishes."""
        while True:
            try:
                request = proc.body.send(None)
            except StopIteration:
                proc.finished = True
                return
            if isinstance(request, Timeout):
                self._schedule(proc, request.delay)
                return
            if isinstance(request, Get):
                buf = request.buffer
                if buf.can_get(request.amount):
                    buf.level -= request.amount
                    buf.total_got += request.amount
                    self._wake_putters(buf)
                    continue
                proc.waiting_on = request
                buf._getters.append((proc, request.amount))
                return
            if isinstance(request, Put):
                buf = request.buffer
                if buf.can_put(request.amount):
                    buf.level += request.amount
                    buf.total_put += request.amount
                    self._wake_getters(buf)
                    continue
                proc.waiting_on = request
                buf._putters.append((proc, request.amount))
                return
            if isinstance(request, Acquire):
                res = request.resource
                if not res.busy:
                    res.busy = True
                    res._acquired_at = self.now
                    continue
                proc.waiting_on = request
                res._waiters.append(proc)
                return
            raise SimulationError(
                f"process {proc.name!r} yielded unknown request "
                f"{type(request).__name__}"
            )

    def release(self, resource: UnitResource) -> None:
        """Free a unit resource; wakes the next waiter immediately."""
        if not resource.busy:
            raise SimulationError(f"release of idle resource {resource.name!r}")
        resource.total_busy_time += self.now - resource._acquired_at
        resource.busy = False
        if resource._waiters:
            proc = resource._waiters.popleft()
            proc.waiting_on = None
            resource.busy = True
            resource._acquired_at = self.now
            self._schedule(proc, 0.0)

    def _wake_getters(self, buf: TokenBuffer) -> None:
        while buf._getters:
            proc, amount = buf._getters[0]
            if not buf.can_get(amount):
                break
            buf._getters.popleft()
            buf.level -= amount
            buf.total_got += amount
            proc.waiting_on = None
            self._schedule(proc, 0.0)

    def _wake_putters(self, buf: TokenBuffer) -> None:
        while buf._putters:
            proc, amount = buf._putters[0]
            if not buf.can_put(amount):
                break
            buf._putters.popleft()
            buf.level += amount
            buf.total_put += amount
            proc.waiting_on = None
            self._schedule(proc, 0.0)

    def run(
        self,
        until: float = float("inf"),
        max_sim_seconds: float | None = None,
        max_events: int | None = None,
    ) -> float:
        """Run to completion (or ``until``); returns the final clock.

        ``until`` truncates silently (a measurement window); the watchdog
        limits are budgets a healthy simulation should never reach, so
        blowing one raises instead of returning a misleading clock.

        Raises:
            DeadlockError: if unfinished processes remain but no events are
                pending (a cycle of blocked FIFO operations).
            WatchdogError: if the simulated clock passes ``max_sim_seconds``
                or more than ``max_events`` process wakeups are dispatched
                before completion (a runaway or pathological scenario).
            DeadlineExceededError: if an ambient request deadline expires
                (checked every few thousand events — wall clock, not
                simulated time).
        """
        # Watchdog limits follow the shared stage-timeout convention:
        # 0 and None both mean "disabled".
        if max_sim_seconds is not None and max_sim_seconds <= 0:
            max_sim_seconds = None
        if max_events is not None and max_events <= 0:
            max_events = None
        deadline = current_deadline()
        events = 0
        while self._queue:
            at, _, proc = heapq.heappop(self._queue)
            if at > until:
                self.now = until
                return self.now
            if max_sim_seconds is not None and at > max_sim_seconds:
                raise WatchdogError(
                    f"simulation watchdog: simulated clock reached "
                    f"{at:.6g}s (limit {max_sim_seconds:.6g}s) after "
                    f"{events} events without completing"
                )
            self.now = at
            if proc.finished or proc.waiting_on is not None:
                continue  # stale wakeup
            events += 1
            if deadline is not None and events % _DEADLINE_CHECK_EVERY == 0:
                deadline.check("simulation")
            if max_events is not None and events > max_events:
                raise WatchdogError(
                    f"simulation watchdog: {events} events dispatched "
                    f"(limit {max_events}) with simulated clock at "
                    f"{self.now:.6g}s and the design still running"
                )
            self._step_process(proc)
        stuck = [p.name for p in self._processes if not p.finished]
        if stuck:
            raise DeadlockError(
                f"simulation deadlocked at t={self.now:.6g}s; "
                f"blocked processes: {sorted(stuck)[:10]}"
            )
        return self.now
