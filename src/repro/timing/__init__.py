"""Timing models: floorplan quality -> achievable clock frequency."""

from .frequency import (
    DEFAULT_TIMING,
    TimingInputs,
    TimingModelConfig,
    design_frequency_mhz,
    estimate_frequency_mhz,
)

__all__ = [
    "DEFAULT_TIMING",
    "TimingInputs",
    "TimingModelConfig",
    "design_frequency_mhz",
    "estimate_frequency_mhz",
]
