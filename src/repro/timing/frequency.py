"""Design frequency estimation.

The paper's central timing claim (Section 2) is that HLS without a global
view of the chip produces under-pipelined long wires, and that coupling
floorplanning + interconnect pipelining with compilation recovers the
frequency: Vitis baselines land at 123-165 MHz on congested designs,
TAPA/AutoBridge at 190-250 MHz, and TAPA-CS designs at 220-300 MHz.

We cannot run Vivado timing, so this model maps the *causes* the paper
identifies onto a critical-path delay estimate:

* base logic delay corresponding to the 300 MHz device ceiling;
* each **unpipelined** die-boundary crossing on a net adds a large fixed
  delay (registered crossings add none — that is the whole point of
  interconnect pipelining);
* slot congestion stretches routing: delay grows once the binding
  resource of the most-utilized slot exceeds a knee (~70 %);
* HBM channel over-subscription adds bottom-die routing pressure.

The decomposition is per device; a multi-FPGA design clocks at the
slowest device's frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..devices.fpga import FPGAPart


@dataclass(frozen=True, slots=True)
class TimingModelConfig:
    """Calibration constants for the delay model."""

    #: ns of delay per unpipelined slot crossing on the worst net.
    crossing_delay_ns: float = 1.1
    #: Crossing exposure absorbed for free: narrow or short hops fit the
    #: base clock budget, so only exposure beyond this costs delay.
    free_crossings: float = 0.5
    #: Congestion knee: utilization below this costs nothing.
    congestion_knee: float = 0.70
    #: ns added per unit of utilization above the knee (scaled into 0..0.3).
    congestion_delay_ns: float = 4.5
    #: ns added at worst-case HBM channel over-subscription.
    hbm_pressure_delay_ns: float = 1.6
    #: Floor on the reported frequency, MHz.
    min_frequency_mhz: float = 60.0


DEFAULT_TIMING = TimingModelConfig()


@dataclass(frozen=True, slots=True)
class TimingInputs:
    """Per-device floorplan quality metrics feeding the delay model.

    Attributes:
        max_unpipelined_crossings: slot crossings on the worst net that
            did *not* receive pipeline registers (0 after TAPA-CS's
            conservative pipelining; grid-diameter-sized for a placer
            operating blind).
        max_slot_utilization: binding-resource utilization of the most
            congested slot (0..1+; >1 means the placement would not route).
        hbm_binding_quality: 1.0 = perfectly balanced channel binding,
            lower = over-subscribed bottom-die channels.
    """

    max_unpipelined_crossings: float
    max_slot_utilization: float
    hbm_binding_quality: float = 1.0


def estimate_frequency_mhz(
    part: FPGAPart,
    inputs: TimingInputs,
    config: TimingModelConfig = DEFAULT_TIMING,
) -> float:
    """Achievable clock frequency of one device under the delay model."""
    base_delay_ns = 1e3 / part.max_frequency_mhz

    delay = base_delay_ns
    effective_crossings = max(
        0.0, inputs.max_unpipelined_crossings - config.free_crossings
    )
    delay += config.crossing_delay_ns * effective_crossings

    over = max(0.0, inputs.max_slot_utilization - config.congestion_knee)
    delay += config.congestion_delay_ns * min(over, 0.3)

    pressure = max(0.0, 1.0 - inputs.hbm_binding_quality)
    delay += config.hbm_pressure_delay_ns * min(pressure, 1.0)

    freq = 1e3 / delay
    return max(config.min_frequency_mhz, min(part.max_frequency_mhz, freq))


def design_frequency_mhz(
    part: FPGAPart,
    per_device_inputs: dict[int, TimingInputs],
    config: TimingModelConfig = DEFAULT_TIMING,
) -> float:
    """Clock of a multi-device design: the slowest device wins."""
    if not per_device_inputs:
        return part.max_frequency_mhz
    return min(
        estimate_frequency_mhz(part, inputs, config)
        for inputs in per_device_inputs.values()
    )
