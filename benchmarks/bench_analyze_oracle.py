"""Static-analyzer evidence: bound vs. simulation on every paper app.

For each application this regenerates the oracle cross-check — the
static latency lower bound, the simulated latency, their ratio, the
contention verdict, and the named bottleneck — plus the analysis-only
wall time, demonstrating the "milliseconds, not simulations" claim.
The committed baseline pins the ratios: a bound that drifts above the
simulator (ratio < 1) or loosens past the 15 % contract on
contention-free designs fails the quick-bench regression gate.
"""

import time

from repro.bench import print_table

from conftest import run_once


def analyze_oracle_evidence():
    from repro.analyze import analyze_design, cross_check_design
    from repro.cli import _build_app_graph
    from repro.cluster import paper_testbed
    from repro.core.compiler import compile_design
    from repro.sim.execution import SimulationConfig

    headers = [
        "app", "bound_ms", "sim_ms", "ratio", "contention",
        "bottleneck", "analyze_wall_ms",
    ]
    rows = []
    config = SimulationConfig(chunks=16)
    for app in ("stencil", "pagerank", "knn", "cnn"):
        design = compile_design(_build_app_graph(app), paper_testbed(2))
        start = time.perf_counter()
        report = analyze_design(design, config)
        analyze_ms = (time.perf_counter() - start) * 1e3
        out = cross_check_design(design, config)
        bottleneck = report.bottleneck()
        rows.append([
            app,
            round(out.latency_lower_bound_s * 1e3, 4),
            round(out.simulated_latency_s * 1e3, 4),
            round(out.ratio, 4),
            "free" if out.contention_free else "contended",
            f"{bottleneck.kind}:{bottleneck.name}",
            round(analyze_ms, 2),
        ])
        assert out.ok, out.describe()
    return headers, rows


def test_analyze_oracle(benchmark):
    headers, rows = run_once(benchmark, analyze_oracle_evidence)
    print_table(headers, rows,
                title="Static bound vs. simulated latency (oracle cross-check)")
    assert rows, "experiment produced no rows"
