"""Table 5: PageRank network suite (synthetic SNAP match).

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  This table carries paper constants and is cheap to emit.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_table5_networks(benchmark):
    headers, rows = run_once(benchmark, ex.table5_networks)
    print_table(headers, rows, title="Table 5: PageRank network suite (synthetic SNAP match)")
    assert rows, "experiment produced no rows"
