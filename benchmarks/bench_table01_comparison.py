"""Table 1: comparison with prior multi-FPGA methods.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  This table carries paper constants and is cheap to emit.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_table1_comparison(benchmark):
    headers, rows = run_once(benchmark, ex.table1_comparison)
    print_table(headers, rows, title="Table 1: comparison with prior multi-FPGA methods")
    assert rows, "experiment produced no rows"
