"""Table 3: speed-up vs the Vitis single-FPGA baseline.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_table3_speedups(benchmark):
    headers, rows = run_once(benchmark, ex.table3_speedups)
    print_table(headers, rows, title="Table 3: speed-up vs the Vitis single-FPGA baseline")
    assert rows, "experiment produced no rows"
