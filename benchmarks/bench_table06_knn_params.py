"""Table 6: KNN parameter space.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  This table carries paper constants and is cheap to emit.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_table6_knn_params(benchmark):
    headers, rows = run_once(benchmark, ex.table6_knn_params)
    print_table(headers, rows, title="Table 6: KNN parameter space")
    assert rows, "experiment produced no rows"
