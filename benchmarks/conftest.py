"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures and prints
it, so `pytest benchmarks/ --benchmark-only -s` doubles as the
reproduction report.  Set REPRO_QUICK=1 to trim the swept configurations
(the models are identical, only fewer sweep points run).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
