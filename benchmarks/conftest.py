"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures and prints
it, so `pytest benchmarks/ --benchmark-only -s` doubles as the
reproduction report.  Set REPRO_QUICK=1 to trim the swept configurations
(the models are identical, only fewer sweep points run).

Each run also writes a machine-readable ``BENCH_<experiment>.json``
record (headers, rows, wall seconds, cache hit/miss deltas, jobs) next
to the working directory — override the location with
``REPRO_BENCH_JSON_DIR``.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.perf.cache import cache_stats


def _emit_record(fn, result, wall_seconds, before, after):
    record = {
        "experiment": fn.__name__,
        "wall_seconds": wall_seconds,
        "jobs": os.environ.get("REPRO_BENCH_JOBS") or "1",
        "quick": bool(os.environ.get("REPRO_QUICK")),
        "cache": {
            key: after[key] - before[key]
            for key in after
            if isinstance(after[key], (int, float))
        },
    }
    try:
        headers, rows = result
        record["headers"] = list(headers)
        record["rows"] = [list(row) for row in rows]
    except (TypeError, ValueError):
        record["result"] = repr(result)
    out_dir = Path(os.environ.get("REPRO_BENCH_JSON_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{fn.__name__}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Emits ``BENCH_<fn.__name__>.json`` with the produced rows, the wall
    time, and the compile/simulate cache activity of this run.
    """
    before = cache_stats().as_dict()
    start = time.perf_counter()
    result = benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
    wall_seconds = time.perf_counter() - start
    _emit_record(fn, result, wall_seconds, before, cache_stats().as_dict())
    return result
