"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures and prints
it, so `pytest benchmarks/ --benchmark-only -s` doubles as the
reproduction report.  Set REPRO_QUICK=1 to trim the swept configurations
(the models are identical, only fewer sweep points run).

Each run also writes a machine-readable ``BENCH_<experiment>.json``
record (headers, rows, wall seconds, cache hit/miss deltas, jobs,
quarantined sweep points, partial flag) next to the working directory —
override the location with ``REPRO_BENCH_JSON_DIR``.
"""

import os
import time

from repro.bench.record import emit_bench_record
from repro.perf.cache import cache_stats
from repro.perf.sweep import take_failure_report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    Emits ``BENCH_<fn.__name__>.json`` with the produced rows, the wall
    time, the compile/simulate cache activity, and any sweep points the
    supervisor quarantined during the run.
    """
    take_failure_report()  # drop failures from earlier experiments
    before = cache_stats().as_dict()
    start = time.perf_counter()
    result = benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
    wall_seconds = time.perf_counter() - start
    emit_bench_record(
        fn.__name__,
        result,
        wall_seconds,
        before,
        cache_stats().as_dict(),
        failures=take_failure_report(),
        out_dir=os.environ.get("REPRO_BENCH_JSON_DIR", "."),
    )
    return result
