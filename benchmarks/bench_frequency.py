"""Sections 5.2-5.5: design frequency per application per flow.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_frequency_table(benchmark):
    headers, rows = run_once(benchmark, ex.frequency_table)
    print_table(headers, rows, title="Sections 5.2-5.5: design frequency per application per flow")
    assert rows, "experiment produced no rows"
