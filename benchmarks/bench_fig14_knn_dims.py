"""Figure 14: KNN speed-up over feature dimension (N=4M, K=10).

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_fig14_knn_dims(benchmark):
    headers, rows = run_once(benchmark, ex.fig14_knn_dims)
    print_table(headers, rows, title="Figure 14: KNN speed-up over feature dimension (N=4M, K=10)")
    assert rows, "experiment produced no rows"
