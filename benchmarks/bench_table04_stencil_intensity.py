"""Table 4: stencil compute intensity and inter-FPGA volume.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_table4_stencil_intensity(benchmark):
    headers, rows = run_once(benchmark, ex.table4_stencil_intensity)
    print_table(headers, rows, title="Table 4: stencil compute intensity and inter-FPGA volume")
    assert rows, "experiment produced no rows"
