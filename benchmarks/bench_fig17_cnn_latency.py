"""Figure 17: CNN latency per grid size.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_fig17_cnn_latency(benchmark):
    headers, rows = run_once(benchmark, ex.fig17_cnn_latency)
    print_table(headers, rows, title="Figure 17: CNN latency per grid size")
    assert rows, "experiment produced no rows"
