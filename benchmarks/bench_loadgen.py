#!/usr/bin/env python
"""Load-generator proof of the tenant-aware overload controls.

Run directly (CI's loadgen-smoke job does): spawns a real
``repro serve --fleet 2`` subprocess with per-tenant quotas configured,
drives the built-in loadgen scenarios over plain HTTP, and asserts the
serving layer's fairness promises hold:

1. *uncontended baseline*: the well-behaved tenants alone — their p99
   and per-tenant goodput are the yardstick for phase 2;
2. *abusive tenant*: one open-loop tenant offers ~10x its configured
   quota while the same well-behaved tenants run their closed loops.
   The abuser must be shed with ``QuotaExceededError`` (never a bare
   queue-full shed storm), the well-behaved tenants' p99 must stay
   within 2x the uncontended baseline (with a small absolute floor so
   scheduler-jitter on a ~10 ms cache hit cannot flake the bound), and
   their goodput must stay within 10 % of their uncontended rate;
3. *thundering herd*: every client submits the identical body; >= 80 %
   of the duplicates must be absorbed by single-flight coalescing or
   the shared artifact cache;
4. the ``repro loadgen`` CLI drives the same server and emits a
   parseable JSON report.

Emits ``BENCH_loadgen.json`` (gated columns are deterministic request
counts and pass/fail bits; latency/goodput columns are ``wall_*``-named
and therefore ungated).  Exits 0 on success, 1 with a diagnostic.
"""

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.bench.record import emit_bench_record  # noqa: E402
from repro.serve.loadgen import (  # noqa: E402
    TenantLoad,
    build_scenario,
    http_poster,
    run_scenario,
)

WELL_TENANTS = 3
WELL_REQUESTS = 12
#: The abuser's configured quota (req/s) and its offered rate (~10x).
ABUSER_QUOTA_RPS = 2.0
ABUSER_OFFERED_RPS = 20.0
#: p99 floor: below this, latency is scheduler jitter, not service
#: behaviour, and a 2x bound on jitter is meaningless.
P99_FLOOR_S = 0.1


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def get_health(port):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/healthz", timeout=10.0
    ) as response:
        return json.loads(response.read())


def wait_for_server(port, deadline_s=60.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        try:
            return get_health(port)
        except (urllib.error.URLError, OSError):
            time.sleep(0.2)
    raise RuntimeError("repro serve --fleet never became healthy")


def well_stats(document) -> dict:
    """Aggregate the well-behaved tenants' numbers from one report."""
    tenants = {
        name: stats
        for name, stats in document["tenants"].items()
        if name.startswith("well-")
    }
    return {
        "p99_s": max(stats["p99_ms"] for stats in tenants.values()) / 1e3,
        "goodput_rps": min(
            stats["goodput_rps"] for stats in tenants.values()
        ),
        "ok": sum(stats["ok"] for stats in tenants.values()),
        "sent": sum(stats["sent"] for stats in tenants.values()),
    }


def main() -> int:
    port = free_port()
    cache_dir = tempfile.mkdtemp(prefix="repro-loadgen-cache-")
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO / "src"),
        REPRO_CACHE_DIR=cache_dir,
        REPRO_SERVE_MAX_QUEUE="32",
        # Well-behaved tenants are unlimited (rate 0 = off); only the
        # abuser carries a quota, so every shed in phase 2 must be a
        # QuotaExceededError with its name on it.
        REPRO_SERVE_QUOTAS=json.dumps(
            {"abuser": {"rate": ABUSER_QUOTA_RPS, "burst": 4}}
        ),
        # Brownout stays enabled (default) but the short scenarios
        # should not trip it; the chaos test exercises it explicitly.
    )
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--fleet", "2"],
        cwd=REPO,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    post = http_poster("127.0.0.1", port)
    failures = []
    rows = []
    start_wall = time.monotonic()
    try:
        wait_for_server(port)

        # Warm the shared artifact cache so every scenario request is a
        # cache hit: the scenarios measure *scheduling* behaviour, and
        # a first-compile outlier would pollute the p99 yardstick.
        status, payload = post({"app": "stencil", "fpgas": 2,
                                "use_cache": True})
        if status != 200:
            failures.append(f"warmup compile failed: {status} {payload}")

        # -- phase 1: uncontended baseline ------------------------------
        baseline_doc = run_scenario(
            build_scenario("burst", tenants=WELL_TENANTS,
                           requests=WELL_REQUESTS),
            post,
            health=lambda: get_health(port),
        )
        baseline = well_stats(baseline_doc)
        if baseline["ok"] != baseline["sent"]:
            failures.append(
                f"uncontended phase shed well-behaved requests: {baseline}"
            )
        rows.append([
            "uncontended", baseline["sent"],
            int(baseline["ok"] == baseline["sent"]), 1,
            round(baseline["p99_s"] * 1e3, 3),
            baseline["goodput_rps"],
        ])

        # -- phase 2: one abusive tenant at ~10x its quota --------------
        abusive_doc = run_scenario(
            build_scenario(
                "abusive", tenants=WELL_TENANTS, requests=WELL_REQUESTS,
                abusive_rate_rps=ABUSER_OFFERED_RPS,
            ),
            post,
            health=lambda: get_health(port),
        )
        contended = well_stats(abusive_doc)
        abuser = abusive_doc["tenants"]["abuser"]

        shed_ok = True
        if abuser["shed"] == 0:
            shed_ok = False
            failures.append(f"the abuser was never shed: {abuser}")
        if abuser["quota_shed"] != abuser["shed"]:
            shed_ok = False
            failures.append(
                "abuser sheds were not all QuotaExceededError: "
                f"{abuser['quota_shed']}/{abuser['shed']}"
            )
        if abuser["other_errors"] or abuser["transport_errors"]:
            shed_ok = False
            failures.append(f"abuser saw non-shed errors: {abuser}")

        fairness_ok = True
        p99_bound = 2.0 * max(baseline["p99_s"], P99_FLOOR_S)
        if contended["p99_s"] > p99_bound:
            fairness_ok = False
            failures.append(
                f"well-behaved p99 {contended['p99_s'] * 1e3:.1f} ms "
                f"exceeds 2x the uncontended baseline "
                f"({baseline['p99_s'] * 1e3:.1f} ms, bound "
                f"{p99_bound * 1e3:.1f} ms)"
            )
        if contended["ok"] != contended["sent"]:
            fairness_ok = False
            failures.append(
                f"well-behaved requests were shed under abuse: {contended}"
            )
        goodput_floor = 0.9 * baseline["goodput_rps"]
        if contended["goodput_rps"] < goodput_floor:
            fairness_ok = False
            failures.append(
                f"well-behaved goodput {contended['goodput_rps']:.2f} rps "
                f"fell below 90% of the uncontended "
                f"{baseline['goodput_rps']:.2f} rps"
            )
        rows.append([
            "abusive", contended["sent"] + abuser["sent"],
            int(shed_ok), int(fairness_ok),
            round(contended["p99_s"] * 1e3, 3),
            contended["goodput_rps"],
        ])

        # -- phase 3: thundering herd -----------------------------------
        herd_doc = run_scenario(
            build_scenario("herd", tenants=WELL_TENANTS,
                           requests=WELL_REQUESTS),
            post,
            health=lambda: get_health(port),
        )
        herd_sent = sum(s["sent"] for s in herd_doc["tenants"].values())
        herd_ok = sum(s["ok"] for s in herd_doc["tenants"].values())
        delta = herd_doc.get("service_delta", {})
        cache_delta = herd_doc.get("cache_delta", {})
        absorbed = delta.get("coalesced", 0) + cache_delta.get("hits", 0)
        dedup_ok = True
        if herd_ok != herd_sent:
            dedup_ok = False
            failures.append(f"herd lost requests: {herd_ok}/{herd_sent}")
        if absorbed < 0.8 * herd_sent:
            dedup_ok = False
            failures.append(
                f"only {absorbed}/{herd_sent} herd requests were absorbed "
                f"by coalescing or the cache "
                f"(coalesced={delta.get('coalesced', 0)}, "
                f"hits={cache_delta.get('hits', 0)})"
            )
        rows.append([
            "herd", herd_sent, int(dedup_ok), int(dedup_ok),
            round(well_stats(herd_doc)["p99_s"] * 1e3, 3)
            if any(k.startswith("well-") for k in herd_doc["tenants"])
            else 0.0,
            0.0,
        ])

        # -- phase 4: the CLI drives the same server --------------------
        cli = subprocess.run(
            [sys.executable, "-m", "repro", "loadgen", "burst",
             "--port", str(port), "--tenants", "2", "--requests", "4",
             "--json"],
            cwd=REPO, env=env, capture_output=True, timeout=300,
        )
        cli_ok = True
        if cli.returncode != 0:
            cli_ok = False
            failures.append(
                f"repro loadgen exited {cli.returncode}: "
                f"{cli.stderr.decode(errors='replace')[-500:]}"
            )
        else:
            try:
                cli_report = json.loads(cli.stdout)
                assert cli_report[0]["scenario"] == "burst"
                assert cli_report[0]["tenants"]
            except (ValueError, LookupError, AssertionError) as exc:
                cli_ok = False
                failures.append(f"repro loadgen --json unparseable: {exc}")
        rows.append(["cli", 8, int(cli_ok), int(cli_ok), 0.0, 0.0])
    finally:
        server.send_signal(signal.SIGTERM)
        try:
            output, _ = server.communicate(timeout=90.0)
        except subprocess.TimeoutExpired:
            server.kill()
            output, _ = server.communicate()

    wall = time.monotonic() - start_wall
    emit_bench_record(
        "loadgen",
        result=(
            ["scenario", "requests", "shed_ok", "fairness_ok",
             "wall_p99_ms", "wall_goodput_rps"],
            rows,
        ),
        wall_seconds=wall,
        out_dir=os.environ.get("REPRO_BENCH_JSON_DIR", "."),
    )

    if failures:
        print("loadgen bench FAILED:")
        for line in failures:
            print(f"  - {line}")
        print("--- server output ---")
        print(output.decode(errors="replace")[-4000:])
        return 1
    print(
        f"loadgen bench ok: abusive tenant shed by quota, well-behaved "
        f"p99 within bound, herd absorbed; {wall:.1f}s total"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
