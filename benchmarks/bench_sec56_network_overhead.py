"""Section 5.6: AlveoLink per-port resource overhead.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  This table carries paper constants and is cheap to emit.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_sec56_network_overhead(benchmark):
    headers, rows = run_once(benchmark, ex.sec56_network_overhead)
    print_table(headers, rows, title="Section 5.6: AlveoLink per-port resource overhead")
    assert rows, "experiment produced no rows"
