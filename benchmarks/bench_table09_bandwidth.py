"""Table 9: hierarchy of data-transfer bandwidths.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  This table carries paper constants and is cheap to emit.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_table9_bandwidth_hierarchy(benchmark):
    headers, rows = run_once(benchmark, ex.table9_bandwidth_hierarchy)
    print_table(headers, rows, title="Table 9: hierarchy of data-transfer bandwidths")
    assert rows, "experiment produced no rows"
