"""Table 8: CNN resource utilization per grid size.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_table8_cnn_resources(benchmark):
    headers, rows = run_once(benchmark, ex.table8_cnn_resources)
    print_table(headers, rows, title="Table 8: CNN resource utilization per grid size")
    assert rows, "experiment produced no rows"
