"""Fault injection: slowdown vs packet-loss rate per application.

Regenerates the robustness table: each app compiled and simulated under
injected link loss (go-back-N retransmission model) and a device-kill
scenario (re-floorplanned on the survivors, or reported infeasible).
Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_fault_sweep(benchmark):
    headers, rows = run_once(benchmark, ex.fault_sweep)
    print_table(headers, rows, title="Fault sweep: slowdown vs loss rate")
    assert rows, "experiment produced no rows"
    # Slowdown must be monotone (non-decreasing) in the loss rate; the
    # last column is the device-kill scenario, not part of the curve.
    for row in rows:
        curve = row[2:-1]
        assert curve == sorted(curve), f"non-monotone slowdown for {row[0]}"
