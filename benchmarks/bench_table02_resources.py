"""Table 2: Alveo U55C resource availability.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  This table carries paper constants and is cheap to emit.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_table2_resources(benchmark):
    headers, rows = run_once(benchmark, ex.table2_resources)
    print_table(headers, rows, title="Table 2: Alveo U55C resource availability")
    assert rows, "experiment produced no rows"
