"""Ablation: HiGHS vs pure-Python branch-and-bound.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_ablation_solver_backends(benchmark):
    headers, rows = run_once(benchmark, ex.ablation_solver_backends)
    print_table(headers, rows, title="Ablation: HiGHS vs pure-Python branch-and-bound")
    assert rows, "experiment produced no rows"
