"""Figure 8: AlveoLink throughput vs transfer size.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  This table carries paper constants and is cheap to emit.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_fig8_alveolink_throughput(benchmark):
    headers, rows = run_once(benchmark, ex.fig8_alveolink_throughput)
    print_table(headers, rows, title="Figure 8: AlveoLink throughput vs transfer size")
    assert rows, "experiment produced no rows"
