"""Figure 12: PageRank latency per flow and dataset.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_fig12_pagerank_latency(benchmark):
    headers, rows = run_once(benchmark, ex.fig12_pagerank_latency)
    print_table(headers, rows, title="Figure 12: PageRank latency per flow and dataset")
    assert rows, "experiment produced no rows"
