"""Ablation: interconnect pipelining on/off.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_ablation_pipelining(benchmark):
    headers, rows = run_once(benchmark, ex.ablation_pipelining)
    print_table(headers, rows, title="Ablation: interconnect pipelining on/off")
    assert rows, "experiment produced no rows"
