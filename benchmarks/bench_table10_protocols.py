"""Table 10: inter-FPGA communication protocols.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  This table carries paper constants and is cheap to emit.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_table10_protocols(benchmark):
    headers, rows = run_once(benchmark, ex.table10_protocols)
    print_table(headers, rows, title="Table 10: inter-FPGA communication protocols")
    assert rows, "experiment produced no rows"
