"""Section 5.7: scaling beyond a single server node (8 FPGAs).

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_sec57_multinode(benchmark):
    headers, rows = run_once(benchmark, ex.sec57_multinode)
    print_table(headers, rows, title="Section 5.7: scaling beyond a single server node (8 FPGAs)")
    assert rows, "experiment produced no rows"
