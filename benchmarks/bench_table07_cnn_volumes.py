"""Table 7: CNN inter-FPGA transfer volume per grid size.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  This table carries paper constants and is cheap to emit.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_table7_cnn_volumes(benchmark):
    headers, rows = run_once(benchmark, ex.table7_cnn_volumes)
    print_table(headers, rows, title="Table 7: CNN inter-FPGA transfer volume per grid size")
    assert rows, "experiment produced no rows"
