"""Figure 13: PageRank resource utilization (F1-T vs F4 devices).

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_fig13_pagerank_resources(benchmark):
    headers, rows = run_once(benchmark, ex.fig13_pagerank_resources)
    print_table(headers, rows, title="Figure 13: PageRank resource utilization (F1-T vs F4 devices)")
    assert rows, "experiment produced no rows"
