"""Figure 15: KNN speed-up over dataset size (D=2, K=10).

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_fig15_knn_sizes(benchmark):
    headers, rows = run_once(benchmark, ex.fig15_knn_sizes)
    print_table(headers, rows, title="Figure 15: KNN speed-up over dataset size (D=2, K=10)")
    assert rows, "experiment produced no rows"
