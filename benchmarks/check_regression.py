"""Gate BENCH_*.json records against committed baselines.

Usage::

    python benchmarks/check_regression.py --fresh <dir> \
        [--baseline benchmarks/baselines] [--tolerance 0.2] \
        [--experiments name1,name2]

Compares every baseline record against the freshly-emitted record of
the same experiment and exits non-zero when:

* a baseline experiment produced no fresh record (the bench vanished or
  crashed),
* a fresh run is ``partial`` or carries quarantined failures,
* headers changed (the table's schema is part of the contract), or
* any numeric cell moved by more than ``--tolerance`` (default 20 %)
  relative to the baseline, or a non-numeric cell changed at all.

Wall-clock seconds are deliberately *not* gated: the rows are model
outputs (latencies, bandwidths, bound/sim ratios) and therefore
machine-independent, while wall time on shared CI runners is not.
Fresh experiments without a baseline pass with a notice — commit the
new record to start gating it.

``--experiments`` restricts the gate to a comma-separated subset of
baseline names.  CI jobs that run *different* bench suites against the
same baselines directory each pass their own subset, so the quick-bench
job is not failed by (say) the fleet-chaos job's baseline having no
fresh record in its workspace.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Relative change allowed on numeric cells before the gate fails.
DEFAULT_TOLERANCE = 0.2

#: Absolute slack so near-zero baselines don't amplify rounding noise.
ABSOLUTE_SLACK = 1e-9


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _cell_regressions(
    base_rows, fresh_rows, tolerance: float, headers=()
) -> list[str]:
    # Columns named *wall* carry machine time, not model output; they
    # are reported for context but never gated (same policy as the
    # record's top-level wall_seconds).
    ungated = {
        j for j, header in enumerate(headers) if "wall" in str(header).lower()
    }
    problems = []
    if len(base_rows) != len(fresh_rows):
        return [f"row count changed: {len(base_rows)} -> {len(fresh_rows)}"]
    for i, (base_row, fresh_row) in enumerate(zip(base_rows, fresh_rows)):
        if len(base_row) != len(fresh_row):
            problems.append(
                f"row {i}: cell count changed: "
                f"{len(base_row)} -> {len(fresh_row)}"
            )
            continue
        for j, (base, fresh) in enumerate(zip(base_row, fresh_row)):
            if j in ungated:
                continue
            if _is_number(base) and _is_number(fresh):
                allowed = abs(base) * tolerance + ABSOLUTE_SLACK
                if abs(fresh - base) > allowed:
                    problems.append(
                        f"row {i} col {j}: {base!r} -> {fresh!r} "
                        f"(moved {abs(fresh - base):.6g}, "
                        f"allowed {allowed:.6g})"
                    )
            elif base != fresh:
                problems.append(f"row {i} col {j}: {base!r} -> {fresh!r}")
    return problems


def compare_record(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """All regressions of one experiment's fresh record vs. its baseline."""
    problems = []
    if fresh.get("partial"):
        problems.append("fresh run is partial (interrupted before completion)")
    if fresh.get("failed"):
        problems.append(
            f"fresh run quarantined {len(fresh['failed'])} sweep point(s)"
        )
    if fresh.get("error"):
        problems.append(f"fresh run errored: {fresh['error']}")
    if baseline.get("headers") != fresh.get("headers"):
        problems.append(
            f"headers changed: {baseline.get('headers')} -> "
            f"{fresh.get('headers')}"
        )
        return problems
    problems.extend(
        _cell_regressions(
            baseline.get("rows", []),
            fresh.get("rows", []),
            tolerance,
            headers=fresh.get("headers", ()),
        )
    )
    return problems


def _load_records(directory: Path) -> dict[str, dict]:
    records = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        with open(path) as handle:
            record = json.load(handle)
        records[record.get("experiment", path.stem)] = record
    return records


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True,
                        help="directory holding the freshly emitted records")
    parser.add_argument("--baseline",
                        default=str(Path(__file__).parent / "baselines"),
                        help="directory holding the committed baselines")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative change on numeric cells")
    parser.add_argument("--experiments", default=None, metavar="NAMES",
                        help="comma-separated baseline names to gate "
                             "(default: every committed baseline)")
    args = parser.parse_args(argv)

    baselines = _load_records(Path(args.baseline))
    fresh = _load_records(Path(args.fresh))
    if args.experiments is not None:
        wanted = {
            name.strip()
            for name in args.experiments.split(",")
            if name.strip()
        }
        missing = wanted - set(baselines)
        if missing:
            print(
                "check_regression: no baseline for requested experiment(s): "
                + ", ".join(sorted(missing)),
                file=sys.stderr,
            )
            return 2
        baselines = {
            name: record
            for name, record in baselines.items()
            if name in wanted
        }
    if not baselines:
        print(f"check_regression: no baselines under {args.baseline}",
              file=sys.stderr)
        return 2

    failed = False
    for name, baseline in sorted(baselines.items()):
        record = fresh.get(name)
        if record is None:
            print(f"FAIL {name}: no fresh BENCH record (bench missing or "
                  "crashed)")
            failed = True
            continue
        problems = compare_record(baseline, record, args.tolerance)
        if problems:
            failed = True
            print(f"FAIL {name}:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   {name} ({len(record.get('rows', []))} row(s) within "
                  f"{args.tolerance:.0%})")
    for name in sorted(set(fresh) - set(baselines)):
        print(f"new  {name}: no baseline committed yet (not gated)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
