"""Section 5.6: floorplanner L1/L2 runtime overheads.

Regenerates the rows with the model pipeline; compare the printed table
against the paper.  Set REPRO_QUICK=1 to trim the sweep.
"""

from repro.bench import experiments as ex
from repro.bench import print_table

from conftest import run_once


def test_sec56_floorplan_overhead(benchmark):
    headers, rows = run_once(benchmark, ex.sec56_floorplan_overhead)
    print_table(headers, rows, title="Section 5.6: floorplanner L1/L2 runtime overheads")
    assert rows, "experiment produced no rows"
